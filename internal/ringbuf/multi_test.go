package ringbuf

import (
	"fmt"
	"math/rand"
	"testing"

	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

// Model-based property test for the multi-cursor ring, in the style of
// property_test.go: MultiBuffer and a naive reference (one shared
// absolute-indexed log plus per-cursor offsets) consume an identical
// randomized op sequence — appends, per-cursor drains, cursor opens,
// cursor closes (variant eject), resets — and must stay observably
// identical after every step: retained occupancy, fullness w.r.t. the
// slowest cursor, per-cursor lag, sequence numbering, and every entry
// each cursor reads back.

// refMulti is the straight-line reference: an ever-growing log slice
// with absolute base/next indexes and per-cursor positions. No circular
// storage, no wakeups — just the observable contract.
type refMulti struct {
	capacity  int
	log       []Entry // log[i] holds absolute index base0+i conceptually; we keep all
	next      int     // absolute index of the next append
	base      int     // absolute index of the oldest retained entry
	seq       uint64
	closed    bool
	highWater int
	dropped   int
	cursors   map[string]int // name -> absolute position
}

func newRefMulti(capacity int) *refMulti {
	if capacity < 1 {
		capacity = 1
	}
	return &refMulti{capacity: capacity, cursors: map[string]int{}}
}

func (r *refMulti) len() int   { return r.next - r.base }
func (r *refMulti) full() bool { return r.len() >= r.capacity }

func (r *refMulti) reclaim() {
	min := r.next
	for _, pos := range r.cursors {
		if pos < min {
			min = pos
		}
	}
	r.base = min
}

func (r *refMulti) append(e Entry) {
	if e.Kind == KindSyscall {
		e.Event.Seq = r.seq
		r.seq++
	}
	r.log = append(r.log, e)
	r.next++
	if len(r.cursors) == 0 {
		r.reclaim()
	}
	if occ := r.len(); occ > r.highWater {
		r.highWater = occ
	}
}

func (r *refMulti) put(e Entry) bool {
	if r.closed || r.full() {
		return false
	}
	r.append(e)
	return true
}

func (r *refMulti) tryAppend(e Entry) bool {
	if r.closed || r.full() {
		if !r.closed {
			r.dropped++
		}
		return false
	}
	r.append(e)
	return true
}

func (r *refMulti) putBatch(batch []Entry) int {
	n := 0
	for _, e := range batch {
		if !r.put(e) {
			return n
		}
		n++
	}
	return n
}

func (r *refMulti) open(name string) {
	r.cursors[name] = r.next
}

func (r *refMulti) closeCursor(name string) {
	delete(r.cursors, name)
	r.reclaim()
}

func (r *refMulti) lag(name string) int { return r.next - r.cursors[name] }

func (r *refMulti) drain(name string, max int) []Entry {
	pos := r.cursors[name]
	n := r.next - pos
	if max > 0 && n > max {
		n = max
	}
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.log[pos+i-(r.next-len(r.log))])
	}
	r.cursors[name] = pos + n
	r.reclaim()
	return out
}

func (r *refMulti) reset() {
	r.log = nil
	r.base, r.next = 0, 0
	r.seq = 0
	r.closed = false
	r.highWater = 0
	r.dropped = 0
	r.cursors = map[string]int{}
}

func TestMultiPropertyMatchesReference(t *testing.T) {
	for _, capacity := range []int{1, 2, 5, 8, 64} {
		for seed := int64(1); seed <= 4; seed++ {
			capacity, seed := capacity, seed
			t.Run(fmt.Sprintf("cap%d_seed%d", capacity, seed), func(t *testing.T) {
				s := sim.New()
				mb := NewMulti(s, capacity)
				ref := newRefMulti(capacity)
				var failure error
				s.Go("driver", func(tk *sim.Task) {
					failure = driveMultiOps(tk, mb, ref, rand.New(rand.NewSource(seed)), 2500)
				})
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
				if failure != nil {
					t.Fatal(failure)
				}
			})
		}
	}
}

// driveMultiOps applies n random operations to both implementations and
// compares every observable after each one. Blocking is avoided by
// construction, as in driveOps: appends only when retention has a free
// slot (or closed: fail-fast), drains only on cursors with pending
// entries (or closed).
func driveMultiOps(tk *sim.Task, mb *MultiBuffer, ref *refMulti, rng *rand.Rand, n int) error {
	nextTID := 0
	mkEntry := func() Entry {
		nextTID++
		kind := KindSyscall
		if rng.Intn(10) == 0 {
			kind = KindPromote // control entries consume no seq
		}
		return Entry{Kind: kind, Event: sysabi.Event{Call: sysabi.Call{Op: sysabi.OpWrite, TID: nextTID}}}
	}
	cursors := map[string]*Cursor{}
	nextCursor := 0
	check := func(op string) error {
		if mb.Len() != ref.len() {
			return fmt.Errorf("%s: Len = %d, ref %d", op, mb.Len(), ref.len())
		}
		if mb.Full() != ref.full() {
			return fmt.Errorf("%s: Full = %v, ref %v", op, mb.Full(), ref.full())
		}
		if mb.Closed() != ref.closed {
			return fmt.Errorf("%s: Closed = %v, ref %v", op, mb.Closed(), ref.closed)
		}
		if mb.NextSeq() != ref.seq {
			return fmt.Errorf("%s: NextSeq = %d, ref %d", op, mb.NextSeq(), ref.seq)
		}
		if mb.HighWater != ref.highWater {
			return fmt.Errorf("%s: HighWater = %d, ref %d", op, mb.HighWater, ref.highWater)
		}
		if mb.Dropped != ref.dropped {
			return fmt.Errorf("%s: Dropped = %d, ref %d", op, mb.Dropped, ref.dropped)
		}
		if mb.Cursors() != len(ref.cursors) {
			return fmt.Errorf("%s: Cursors = %d, ref %d", op, mb.Cursors(), len(ref.cursors))
		}
		for name, c := range cursors {
			if c.Lag() != ref.lag(name) {
				return fmt.Errorf("%s: cursor %s Lag = %d, ref %d", op, name, c.Lag(), ref.lag(name))
			}
			if c.Empty() != (ref.lag(name) == 0) {
				return fmt.Errorf("%s: cursor %s Empty = %v, ref lag %d", op, name, c.Empty(), ref.lag(name))
			}
		}
		return nil
	}
	var scratch []Entry
	for i := 0; i < n; i++ {
		switch op := rng.Intn(20); {
		case op < 5: // Put (guarded against blocking)
			if !mb.Full() || mb.Closed() {
				e := mkEntry()
				got, want := mb.Put(tk, e), ref.put(e)
				if got != want {
					return fmt.Errorf("op %d: Put = %v, ref %v", i, got, want)
				}
			}
		case op < 8: // TryAppend (never blocks)
			e := mkEntry()
			got, want := mb.TryAppend(e), ref.tryAppend(e)
			if got != want {
				return fmt.Errorf("op %d: TryAppend = %v, ref %v", i, got, want)
			}
		case op < 10: // PutBatch sized to the free space (or closed: fail-fast)
			free := mb.Cap() - mb.Len()
			size := 0
			if free > 0 {
				size = rng.Intn(free) + 1
			}
			if mb.Closed() {
				size = rng.Intn(3) + 1 // appends nothing, must not block
			}
			batch := make([]Entry, size)
			for j := range batch {
				batch[j] = mkEntry()
			}
			got, _ := mb.PutBatch(tk, batch)
			if want := ref.putBatch(batch); got != want {
				return fmt.Errorf("op %d: PutBatch = %d, ref %d", i, got, want)
			}
		case op < 12: // OpenCursor (bounded so the test stays meaningful)
			if len(cursors) < 4 {
				name := fmt.Sprintf("v%d", nextCursor)
				nextCursor++
				cursors[name] = mb.OpenCursor(name)
				ref.open(name)
			}
		case op < 13: // Close a random cursor (variant eject)
			if len(cursors) > 0 {
				name := pickCursor(cursors, rng)
				cursors[name].Close()
				delete(cursors, name)
				ref.closeCursor(name)
			}
		case op < 17: // DrainUpTo on a random cursor (guarded against blocking)
			if len(cursors) > 0 {
				name := pickCursor(cursors, rng)
				c := cursors[name]
				if !c.Empty() || c.Closed() {
					max := rng.Intn(mb.Cap() + 1)
					scratch = c.DrainUpTo(tk, scratch[:0], max)
					want := ref.drain(name, max)
					if len(scratch) != len(want) {
						return fmt.Errorf("op %d: cursor %s DrainUpTo(%d) = %d entries, ref %d",
							i, name, max, len(scratch), len(want))
					}
					for j := range want {
						if !entryEq(scratch[j], want[j]) {
							return fmt.Errorf("op %d: cursor %s entry %d = %+v, ref %+v",
								i, name, j, scratch[j], want[j])
						}
					}
				}
			}
		case op < 18: // Close
			mb.Close()
			ref.closed = true
		default: // Reset (reopens, detaches cursors, renumbers from 0)
			mb.Reset()
			ref.reset()
			cursors = map[string]*Cursor{}
		}
		if err := check(fmt.Sprintf("after op %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// pickCursor selects a deterministic random cursor name: map iteration
// order is randomized by the runtime, so sort-by-scan over the known
// bounded name space keeps the choice reproducible per seed.
func pickCursor(cursors map[string]*Cursor, rng *rand.Rand) string {
	names := make([]string, 0, len(cursors))
	for name := range cursors {
		names = append(names, name)
	}
	// Insertion sort: tiny fixed-size slice, avoids importing sort just
	// for determinism plumbing.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names[rng.Intn(len(names))]
}

// TestMultiLaggingCursorRetention pins the retention contract directly:
// a fast cursor running ahead must not free entries a lagging sibling
// has not consumed, and the lagging cursor reads the full stream.
func TestMultiLaggingCursorRetention(t *testing.T) {
	s := sim.New()
	mb := NewMulti(s, 8)
	s.Go("driver", func(tk *sim.Task) {
		fast := mb.OpenCursor("fast")
		slow := mb.OpenCursor("slow")
		for i := 0; i < 6; i++ {
			mb.Put(tk, Entry{Kind: KindSyscall, Event: sysabi.Event{Call: sysabi.Call{Op: sysabi.OpWrite, TID: i + 1}}})
		}
		got := fast.DrainInto(tk, nil)
		if len(got) != 6 {
			t.Errorf("fast drained %d entries, want 6", len(got))
		}
		// The fast cursor consumed everything, but retention is pinned by
		// the slow cursor: nothing has been reclaimed.
		if mb.Len() != 6 {
			t.Errorf("retained occupancy = %d after fast drain, want 6 (slow cursor lags)", mb.Len())
		}
		if slow.Lag() != 6 {
			t.Errorf("slow cursor lag = %d, want 6", slow.Lag())
		}
		// The lagging cursor still reads the full stream, in order.
		got = slow.DrainInto(tk, nil)
		if len(got) != 6 {
			t.Fatalf("slow drained %d entries, want 6", len(got))
		}
		for i, e := range got {
			if e.Event.Seq != uint64(i) || e.Event.Call.TID != i+1 {
				t.Errorf("slow entry %d: seq %d tid %d, want seq %d tid %d",
					i, e.Event.Seq, e.Event.Call.TID, i, i+1)
			}
		}
		if mb.Len() != 0 {
			t.Errorf("retained occupancy = %d after both drains, want 0", mb.Len())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiCursorReleaseUnblocksProducer pins the eject contract: a
// producer parked behind a dead variant's backlog resumes the moment the
// variant's cursor closes, without any sibling action.
func TestMultiCursorReleaseUnblocksProducer(t *testing.T) {
	s := sim.New()
	mb := NewMulti(s, 4)
	var produced int
	s.Go("producer", func(tk *sim.Task) {
		live := mb.OpenCursor("live")
		stuck := mb.OpenCursor("stuck")
		s.Go("live-consumer", func(ct *sim.Task) {
			for {
				got := live.DrainInto(ct, nil)
				if len(got) == 0 {
					return // cursor or buffer closed
				}
			}
		})
		s.Go("ejector", func(et *sim.Task) {
			// Let the producer fill retention behind the stuck cursor, then
			// eject it. The producer must resume without anyone draining.
			et.Sleep(10)
			if !mb.Full() {
				t.Error("buffer not full at eject time; stuck cursor did not pin retention")
			}
			stuck.Close()
		})
		for i := 0; i < 8; i++ {
			if !mb.Put(tk, Entry{Kind: KindSyscall}) {
				t.Errorf("Put %d failed", i)
			}
			produced++
		}
		if stuck.Lag() != 0 {
			t.Errorf("closed cursor lag = %d, want 0 retention effect", mb.Len())
		}
		mb.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if produced != 8 {
		t.Errorf("produced %d entries, want 8", produced)
	}
	if mb.ProducerBlocked == 0 {
		t.Error("producer never blocked; test did not exercise the full path")
	}
}

// TestMultiCursorClosedMidDrainObservesTeardown pins the consumer side
// of eject: a consumer parked on its cursor's empty view wakes and
// observes teardown when the cursor is closed out from under it.
func TestMultiCursorClosedMidDrainObservesTeardown(t *testing.T) {
	s := sim.New()
	mb := NewMulti(s, 4)
	c := mb.OpenCursor("victim")
	drainReturned := false
	s.Go("consumer", func(tk *sim.Task) {
		got := c.DrainInto(tk, nil) // parks: nothing appended yet
		if len(got) != 0 {
			t.Errorf("drain returned %d entries after eject, want 0", len(got))
		}
		drainReturned = true
	})
	s.Go("ejector", func(tk *sim.Task) {
		tk.Sleep(5)
		c.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !drainReturned {
		t.Error("consumer never returned from DrainInto after cursor close")
	}
	if !c.Closed() {
		t.Error("cursor not Closed after Close")
	}
}
