package ringbuf

import (
	"fmt"
	"math/rand"
	"testing"

	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

// Model-based property test: the circular ring and a naive reference
// slice-queue consume an identical randomized op sequence and must stay
// observably identical after every step — occupancy, fullness, closed
// state, sequence numbering (including renumbering across Reset), the
// drop counter, and every entry handed back. Small capacities force
// constant wraparound at the capacity boundary, which is exactly where a
// head/count indexing bug would bite.

// refQueue is the straight-line reference implementation: an append/
// shift slice with the same observable contract as Buffer, minus the
// scheduler blocking (the driver only issues ops that cannot block).
type refQueue struct {
	capacity  int
	q         []Entry
	seq       uint64
	closed    bool
	highWater int
	dropped   int
}

func newRef(capacity int) *refQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &refQueue{capacity: capacity}
}

func (r *refQueue) full() bool  { return len(r.q) >= r.capacity }
func (r *refQueue) empty() bool { return len(r.q) == 0 }

func (r *refQueue) append(e Entry) {
	if e.Kind == KindSyscall {
		e.Event.Seq = r.seq
		r.seq++
	}
	r.q = append(r.q, e)
	if len(r.q) > r.highWater {
		r.highWater = len(r.q)
	}
}

func (r *refQueue) put(e Entry) bool {
	if r.closed || r.full() {
		return false
	}
	r.append(e)
	return true
}

func (r *refQueue) tryAppend(e Entry) bool {
	if r.closed || r.full() {
		if !r.closed {
			r.dropped++
		}
		return false
	}
	r.append(e)
	return true
}

func (r *refQueue) putBatch(batch []Entry) int {
	n := 0
	for _, e := range batch {
		if !r.put(e) {
			return n
		}
		n++
	}
	return n
}

func (r *refQueue) get() (Entry, bool) {
	if r.empty() {
		return Entry{}, false
	}
	e := r.q[0]
	r.q = r.q[1:]
	return e, true
}

func (r *refQueue) drain(max int) []Entry {
	n := len(r.q)
	if max > 0 && n > max {
		n = max
	}
	out := append([]Entry(nil), r.q[:n]...)
	r.q = r.q[n:]
	return out
}

func (r *refQueue) peek() (Entry, bool) {
	if r.empty() {
		return Entry{}, false
	}
	return r.q[0], true
}

func (r *refQueue) reset() {
	r.q = nil
	r.seq = 0
	r.closed = false
	r.highWater = 0
	r.dropped = 0
}

// entryEq compares the observable payload of two entries.
func entryEq(a, b Entry) bool {
	return a.Kind == b.Kind && a.Event.Seq == b.Event.Seq &&
		a.Event.Call.TID == b.Event.Call.TID && a.Event.Call.Op == b.Event.Call.Op
}

func TestPropertyMatchesReferenceQueue(t *testing.T) {
	for _, capacity := range []int{1, 2, 5, 8, 64} {
		for seed := int64(1); seed <= 4; seed++ {
			capacity, seed := capacity, seed
			t.Run(fmt.Sprintf("cap%d_seed%d", capacity, seed), func(t *testing.T) {
				s := sim.New()
				buf := New(s, capacity)
				ref := newRef(capacity)
				var failure error
				s.Go("driver", func(tk *sim.Task) {
					failure = driveOps(tk, buf, ref, rand.New(rand.NewSource(seed)), 2500)
				})
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
				if failure != nil {
					t.Fatal(failure)
				}
			})
		}
	}
}

// driveOps applies n random operations to both implementations and
// compares every observable after each one. Blocking is avoided by
// construction: puts are only issued when a slot is free or the buffer
// is closed (fail-fast), gets/drains only when non-empty or closed.
func driveOps(tk *sim.Task, buf *Buffer, ref *refQueue, rng *rand.Rand, n int) error {
	nextTID := 0
	mkEntry := func() Entry {
		nextTID++
		kind := KindSyscall
		if rng.Intn(10) == 0 {
			kind = KindPromote // control entries consume no seq
		}
		return Entry{Kind: kind, Event: sysabi.Event{Call: sysabi.Call{Op: sysabi.OpWrite, TID: nextTID}}}
	}
	check := func(op string) error {
		if buf.Len() != len(ref.q) {
			return fmt.Errorf("%s: Len = %d, ref %d", op, buf.Len(), len(ref.q))
		}
		if buf.Empty() != ref.empty() || buf.Full() != ref.full() {
			return fmt.Errorf("%s: Empty/Full = %v/%v, ref %v/%v", op, buf.Empty(), buf.Full(), ref.empty(), ref.full())
		}
		if buf.Closed() != ref.closed {
			return fmt.Errorf("%s: Closed = %v, ref %v", op, buf.Closed(), ref.closed)
		}
		if buf.NextSeq() != ref.seq {
			return fmt.Errorf("%s: NextSeq = %d, ref %d", op, buf.NextSeq(), ref.seq)
		}
		if buf.HighWater != ref.highWater {
			return fmt.Errorf("%s: HighWater = %d, ref %d", op, buf.HighWater, ref.highWater)
		}
		if buf.Dropped != ref.dropped {
			return fmt.Errorf("%s: Dropped = %d, ref %d", op, buf.Dropped, ref.dropped)
		}
		be, bok := buf.Peek()
		re, rok := ref.peek()
		if bok != rok || (bok && !entryEq(be, re)) {
			return fmt.Errorf("%s: Peek = (%+v,%v), ref (%+v,%v)", op, be, bok, re, rok)
		}
		return nil
	}
	var scratch []Entry
	for i := 0; i < n; i++ {
		switch op := rng.Intn(20); {
		case op < 5: // Put (guarded against blocking)
			if !buf.Full() || buf.Closed() {
				e := mkEntry()
				got, want := buf.Put(tk, e), ref.put(e)
				if got != want {
					return fmt.Errorf("op %d: Put = %v, ref %v", i, got, want)
				}
			}
		case op < 9: // TryAppend (never blocks)
			e := mkEntry()
			got, want := buf.TryAppend(e), ref.tryAppend(e)
			if got != want {
				return fmt.Errorf("op %d: TryAppend = %v, ref %v", i, got, want)
			}
		case op < 11: // PutBatch sized to the free space (or closed: fail-fast)
			free := buf.Cap() - buf.Len()
			size := 0
			if free > 0 {
				size = rng.Intn(free) + 1
			}
			if buf.Closed() {
				size = rng.Intn(3) + 1 // appends nothing, must not block
			}
			batch := make([]Entry, size)
			for j := range batch {
				batch[j] = mkEntry()
			}
			got, _ := buf.PutBatch(tk, batch)
			if want := ref.putBatch(batch); got != want {
				return fmt.Errorf("op %d: PutBatch = %d, ref %d", i, got, want)
			}
		case op < 15: // Get (guarded against blocking)
			if !buf.Empty() || buf.Closed() {
				ge, gok := buf.Get(tk)
				re, rok := ref.get()
				if gok != rok || (gok && !entryEq(ge, re)) {
					return fmt.Errorf("op %d: Get = (%+v,%v), ref (%+v,%v)", i, ge, gok, re, rok)
				}
			}
		case op < 17: // DrainUpTo (guarded against blocking)
			if !buf.Empty() || buf.Closed() {
				max := rng.Intn(buf.Cap() + 1)
				scratch = buf.DrainUpTo(tk, scratch[:0], max)
				want := ref.drain(max)
				if len(scratch) != len(want) {
					return fmt.Errorf("op %d: DrainUpTo(%d) = %d entries, ref %d", i, max, len(scratch), len(want))
				}
				for j := range want {
					if !entryEq(scratch[j], want[j]) {
						return fmt.Errorf("op %d: DrainUpTo entry %d = %+v, ref %+v", i, j, scratch[j], want[j])
					}
				}
			}
		case op < 18: // Close
			buf.Close()
			ref.closed = true
		default: // Reset (reopens, renumbers from 0)
			buf.Reset()
			ref.reset()
		}
		if err := check(fmt.Sprintf("after op %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// TestPropertySeqRenumberAcrossReset pins the renumbering contract the
// property test exercises statistically: wrap a small ring past its
// capacity boundary, reset, and confirm the next accepted syscall entry
// restarts at seq 0 while control entries still consume nothing.
func TestPropertySeqRenumberAcrossReset(t *testing.T) {
	s := sim.New()
	buf := New(s, 3)
	s.Go("driver", func(tk *sim.Task) {
		e := Entry{Kind: KindSyscall}
		for i := 0; i < 7; i++ { // wraps the 3-slot ring twice
			buf.Put(tk, e)
			got, _ := buf.Get(tk)
			if got.Event.Seq != uint64(i) {
				t.Errorf("pre-reset entry %d: seq %d", i, got.Event.Seq)
			}
		}
		buf.Reset()
		if buf.NextSeq() != 0 {
			t.Errorf("NextSeq after Reset = %d, want 0", buf.NextSeq())
		}
		buf.Put(tk, Entry{Kind: KindPromote}) // no seq consumed
		buf.Put(tk, e)
		if first, _ := buf.Get(tk); first.Kind != KindPromote {
			t.Errorf("first post-reset entry = %v, want promote", first.Kind)
		}
		if second, _ := buf.Get(tk); second.Event.Seq != 0 {
			t.Errorf("first post-reset syscall seq = %d, want 0", second.Event.Seq)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkReferenceShiftQueue measures the v1-style slice-shift queue
// for contrast with BenchmarkPutGet: the shifting layout reallocates
// every time the backing array drains, so its B/op stays visibly
// non-zero while the circular ring's is ~0.
func BenchmarkReferenceShiftQueue(b *testing.B) {
	ref := newRef(1024)
	e := Entry{Kind: KindSyscall, Event: sysabi.Event{Call: sysabi.Call{Op: sysabi.OpWrite, TID: 1}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.put(e)
		if _, ok := ref.get(); !ok {
			b.Fatal("empty")
		}
		if len(ref.q) == 0 {
			ref.q = nil // v1 dropped the drained backing array
		}
	}
}
