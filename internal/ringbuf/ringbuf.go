// Package ringbuf implements the Varan-style shared ring buffer at the
// heart of MVEDSUA's update pipeline (§3.1-3.2 of the paper).
//
// The leader appends each executed system call and its result; followers
// consume entries in order and validate their own syscalls against them.
// The buffer has a fixed capacity: when it fills, the leader blocks until
// the follower drains entries — this is exactly the mechanism behind the
// paper's Figure 7 (small buffers reintroduce the update pause; a 2^24
// buffer hides it completely).
//
// Besides syscall events the buffer carries control entries: promotion
// (the leader demotes itself, §3.2 t4) and termination.
package ringbuf

import (
	"fmt"

	"mvedsua/internal/obs"
	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

// Kind discriminates ring buffer entries.
type Kind int

// Entry kinds.
const (
	KindSyscall  Kind = iota // a recorded syscall event
	KindPromote              // leader demoted itself; consumer becomes leader
	KindShutdown             // producer exited; consumers should stop
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindSyscall:
		return "syscall"
	case KindPromote:
		return "promote"
	case KindShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Entry is one slot of the ring buffer.
type Entry struct {
	Kind  Kind
	Event sysabi.Event
}

// Buffer is a single-producer single-consumer ring of Entries with
// cooperative blocking semantics on the sim scheduler. Storage grows
// lazily up to the configured capacity, so a 2^24-entry buffer (the
// paper's largest, §6.1) only consumes memory proportional to its actual
// occupancy.
type Buffer struct {
	sched    *sim.Scheduler
	capacity int
	q        []Entry // q[0] is the oldest pending entry
	seq      uint64  // sequence numbers assigned to syscall events

	notEmpty sim.WaitQueue
	notFull  sim.WaitQueue

	closed bool

	// HighWater tracks the maximum occupancy ever reached, for reporting.
	HighWater int
	// ProducerBlocked counts how many times the producer had to wait on a
	// full buffer (the visible service pause of Figure 7).
	ProducerBlocked int
	// Dropped counts entries TryAppend refused on a full buffer — the
	// discard-policy path. A discarded follower shows Dropped > 0 while
	// a merely stalled one shows ProducerBlocked > 0; the two failure
	// shapes are distinguishable in the trace and in reports.
	Dropped int

	// Rec, if non-nil, receives ring-buffer metrics and trace events
	// (the flight recorder). Nil costs one pointer check per operation.
	Rec *obs.Recorder
}

// New returns a buffer with the given capacity (minimum 1).
func New(sched *sim.Scheduler, capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{sched: sched, capacity: capacity}
}

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return b.capacity }

// Len returns the current occupancy.
func (b *Buffer) Len() int { return len(b.q) }

// Empty reports whether no entries are pending.
func (b *Buffer) Empty() bool { return len(b.q) == 0 }

// Full reports whether the buffer has no free slots.
func (b *Buffer) Full() bool { return len(b.q) >= b.capacity }

// Closed reports whether Close has been called.
func (b *Buffer) Closed() bool { return b.closed }

// NextSeq returns the sequence number the next recorded event will get.
func (b *Buffer) NextSeq() uint64 { return b.seq }

// Put appends an entry, blocking the producer task while the buffer is
// full. It reports false if the buffer was closed.
func (b *Buffer) Put(t *sim.Task, e Entry) bool {
	for b.Full() {
		if b.closed {
			return false
		}
		b.ProducerBlocked++
		b.Rec.Inc(obs.CRingBlocked)
		if b.Rec.Enabled() {
			b.Rec.Emitf(obs.KindRingBlock, t.Name(), "buffer full (%d/%d)", len(b.q), b.capacity)
			blockedAt := t.Now()
			t.Block(&b.notFull)
			b.Rec.Observe(obs.HRingBlockWait, t.Now()-blockedAt)
		} else {
			t.Block(&b.notFull)
		}
	}
	if b.closed {
		return false
	}
	b.append(e)
	return true
}

// append stores one entry (capacity already checked) and updates the
// occupancy accounting shared by Put and TryAppend.
func (b *Buffer) append(e Entry) {
	if e.Kind == KindSyscall {
		e.Event.Seq = b.seq
		b.seq++
	}
	b.q = append(b.q, e)
	if n := len(b.q); n > b.HighWater {
		b.HighWater = n
	}
	if b.Rec.Enabled() {
		b.Rec.Inc(obs.CRingPut)
		b.Rec.SetGauge(obs.GRingOccupancy, int64(len(b.q)))
		b.Rec.MaxGauge(obs.GRingHighWater, int64(b.HighWater))
		b.Rec.Emitf(obs.KindRingPut, e.Kind.String(), "%s (occ %d/%d)", entryDetail(e), len(b.q), b.capacity)
	}
	b.notEmpty.WakeAll(b.sched)
}

// entryDetail renders an entry for the trace.
func entryDetail(e Entry) string {
	if e.Kind == KindSyscall {
		return e.Event.String()
	}
	return e.Kind.String()
}

// TryAppend appends an entry without ever blocking: it reports false if
// the buffer is full or closed, leaving the entry unrecorded. This is
// the producer side of the discard-follower policy — instead of parking
// the leader behind a lagging follower, the monitor observes the failed
// append and drops the follower (the dMVX-style degradation path).
func (b *Buffer) TryAppend(e Entry) bool {
	if b.closed || b.Full() {
		if !b.closed {
			b.Dropped++
			b.Rec.Inc(obs.CRingDropped)
			if b.Rec.Enabled() {
				b.Rec.Emitf(obs.KindRingDiscard, e.Kind.String(), "%s dropped (%d total, occ %d/%d)",
					entryDetail(e), b.Dropped, len(b.q), b.capacity)
			}
		}
		return false
	}
	b.append(e)
	return true
}

// PutEvent is a convenience wrapper recording a syscall event.
func (b *Buffer) PutEvent(t *sim.Task, ev sysabi.Event) bool {
	return b.Put(t, Entry{Kind: KindSyscall, Event: ev})
}

// Get removes and returns the oldest entry, blocking the consumer task
// while the buffer is empty. It reports false if the buffer was closed and
// fully drained.
func (b *Buffer) Get(t *sim.Task) (Entry, bool) {
	for b.Empty() {
		if b.closed {
			return Entry{}, false
		}
		t.Block(&b.notEmpty)
	}
	e := b.q[0]
	b.q[0] = Entry{} // release payload references promptly
	b.q = b.q[1:]
	if len(b.q) == 0 {
		b.q = nil // let the backing array be collected
	}
	if b.Rec.Enabled() {
		b.Rec.Inc(obs.CRingGet)
		b.Rec.SetGauge(obs.GRingOccupancy, int64(len(b.q)))
		b.Rec.Emitf(obs.KindRingGet, t.Name(), "%s (occ %d/%d)", entryDetail(e), len(b.q), b.capacity)
	}
	b.notFull.WakeAll(b.sched)
	return e, true
}

// Peek returns the oldest entry without removing it, if one is available.
func (b *Buffer) Peek() (Entry, bool) {
	if b.Empty() {
		return Entry{}, false
	}
	return b.q[0], true
}

// Close marks the buffer closed and wakes all waiters. Pending entries can
// still be drained with Get; Put fails afterwards.
func (b *Buffer) Close() {
	if b.closed {
		return
	}
	b.closed = true
	b.notEmpty.WakeAll(b.sched)
	b.notFull.WakeAll(b.sched)
}

// Reset discards all pending entries and reopens the buffer, reusing the
// allocation. Used when MVEDSUA rolls an update back and later retries.
// Sequence numbering restarts at zero: the next attached follower
// validates a fresh stream.
//
// Both wait queues are woken: a producer parked on a full buffer at the
// moment of a rollback-triggered reset must re-check its condition (the
// buffer is now empty, so it proceeds), and a consumer parked on an
// empty buffer must observe the renumbered stream rather than sleep
// through the reopen. Without the wakeups such a task stays wedged
// forever — no future append can reach a queue nobody ever wakes.
func (b *Buffer) Reset() {
	b.q = nil
	b.seq = 0
	b.closed = false
	b.HighWater = 0
	b.ProducerBlocked = 0
	b.Dropped = 0
	b.Rec.Inc(obs.CRingResets)
	b.Rec.SetGauge(obs.GRingOccupancy, 0)
	b.Rec.Emit(obs.KindRingReset, "ringbuf", "reset: entries discarded, seq restarted at 0")
	b.notFull.WakeAll(b.sched)
	b.notEmpty.WakeAll(b.sched)
}
