// Package ringbuf implements the Varan-style shared ring buffer at the
// heart of MVEDSUA's update pipeline (§3.1-3.2 of the paper).
//
// The leader appends each executed system call and its result; followers
// consume entries in order and validate their own syscalls against them.
// The buffer has a fixed capacity: when it fills, the leader blocks until
// the follower drains entries — this is exactly the mechanism behind the
// paper's Figure 7 (small buffers reintroduce the update pause; a 2^24
// buffer hides it completely).
//
// Besides syscall events the buffer carries control entries: promotion
// (the leader demotes itself, §3.2 t4) and termination.
package ringbuf

import (
	"fmt"

	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

// Kind discriminates ring buffer entries.
type Kind int

// Entry kinds.
const (
	KindSyscall  Kind = iota // a recorded syscall event
	KindPromote              // leader demoted itself; consumer becomes leader
	KindShutdown             // producer exited; consumers should stop
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindSyscall:
		return "syscall"
	case KindPromote:
		return "promote"
	case KindShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Entry is one slot of the ring buffer.
type Entry struct {
	Kind  Kind
	Event sysabi.Event
}

// Buffer is a single-producer single-consumer ring of Entries with
// cooperative blocking semantics on the sim scheduler. Storage grows
// lazily up to the configured capacity, so a 2^24-entry buffer (the
// paper's largest, §6.1) only consumes memory proportional to its actual
// occupancy.
type Buffer struct {
	sched    *sim.Scheduler
	capacity int
	q        []Entry // q[0] is the oldest pending entry
	seq      uint64  // sequence numbers assigned to syscall events

	notEmpty sim.WaitQueue
	notFull  sim.WaitQueue

	closed bool

	// HighWater tracks the maximum occupancy ever reached, for reporting.
	HighWater int
	// ProducerBlocked counts how many times the producer had to wait on a
	// full buffer (the visible service pause of Figure 7).
	ProducerBlocked int
}

// New returns a buffer with the given capacity (minimum 1).
func New(sched *sim.Scheduler, capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{sched: sched, capacity: capacity}
}

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return b.capacity }

// Len returns the current occupancy.
func (b *Buffer) Len() int { return len(b.q) }

// Empty reports whether no entries are pending.
func (b *Buffer) Empty() bool { return len(b.q) == 0 }

// Full reports whether the buffer has no free slots.
func (b *Buffer) Full() bool { return len(b.q) >= b.capacity }

// Closed reports whether Close has been called.
func (b *Buffer) Closed() bool { return b.closed }

// NextSeq returns the sequence number the next recorded event will get.
func (b *Buffer) NextSeq() uint64 { return b.seq }

// Put appends an entry, blocking the producer task while the buffer is
// full. It reports false if the buffer was closed.
func (b *Buffer) Put(t *sim.Task, e Entry) bool {
	for b.Full() {
		if b.closed {
			return false
		}
		b.ProducerBlocked++
		t.Block(&b.notFull)
	}
	if b.closed {
		return false
	}
	if e.Kind == KindSyscall {
		e.Event.Seq = b.seq
		b.seq++
	}
	b.q = append(b.q, e)
	if n := len(b.q); n > b.HighWater {
		b.HighWater = n
	}
	b.notEmpty.WakeAll(b.sched)
	return true
}

// TryAppend appends an entry without ever blocking: it reports false if
// the buffer is full or closed, leaving the entry unrecorded. This is
// the producer side of the discard-follower policy — instead of parking
// the leader behind a lagging follower, the monitor observes the failed
// append and drops the follower (the dMVX-style degradation path).
func (b *Buffer) TryAppend(e Entry) bool {
	if b.closed || b.Full() {
		return false
	}
	if e.Kind == KindSyscall {
		e.Event.Seq = b.seq
		b.seq++
	}
	b.q = append(b.q, e)
	if n := len(b.q); n > b.HighWater {
		b.HighWater = n
	}
	b.notEmpty.WakeAll(b.sched)
	return true
}

// PutEvent is a convenience wrapper recording a syscall event.
func (b *Buffer) PutEvent(t *sim.Task, ev sysabi.Event) bool {
	return b.Put(t, Entry{Kind: KindSyscall, Event: ev})
}

// Get removes and returns the oldest entry, blocking the consumer task
// while the buffer is empty. It reports false if the buffer was closed and
// fully drained.
func (b *Buffer) Get(t *sim.Task) (Entry, bool) {
	for b.Empty() {
		if b.closed {
			return Entry{}, false
		}
		t.Block(&b.notEmpty)
	}
	e := b.q[0]
	b.q[0] = Entry{} // release payload references promptly
	b.q = b.q[1:]
	if len(b.q) == 0 {
		b.q = nil // let the backing array be collected
	}
	b.notFull.WakeAll(b.sched)
	return e, true
}

// Peek returns the oldest entry without removing it, if one is available.
func (b *Buffer) Peek() (Entry, bool) {
	if b.Empty() {
		return Entry{}, false
	}
	return b.q[0], true
}

// Close marks the buffer closed and wakes all waiters. Pending entries can
// still be drained with Get; Put fails afterwards.
func (b *Buffer) Close() {
	if b.closed {
		return
	}
	b.closed = true
	b.notEmpty.WakeAll(b.sched)
	b.notFull.WakeAll(b.sched)
}

// Reset discards all pending entries and reopens the buffer, reusing the
// allocation. Used when MVEDSUA rolls an update back and later retries.
func (b *Buffer) Reset() {
	b.q = nil
	b.seq = 0
	b.closed = false
	b.HighWater = 0
	b.ProducerBlocked = 0
}
