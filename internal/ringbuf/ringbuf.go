// Package ringbuf implements the Varan-style shared ring buffer at the
// heart of MVEDSUA's update pipeline (§3.1-3.2 of the paper).
//
// The leader appends each executed system call and its result; followers
// consume entries in order and validate their own syscalls against them.
// The buffer has a fixed capacity: when it fills, the leader blocks until
// the follower drains entries — this is exactly the mechanism behind the
// paper's Figure 7 (small buffers reintroduce the update pause; a 2^24
// buffer hides it completely).
//
// Besides syscall events the buffer carries control entries: promotion
// (the leader demotes itself, §3.2 t4) and termination.
//
// Storage is a true circular buffer: head/count indexes over a
// power-of-two backing array, so Put and Get are O(1) with no slice
// shifting and no steady-state allocation. The backing array still grows
// lazily toward the configured capacity, so a 2^24-entry buffer (the
// paper's largest, §6.1) only consumes memory proportional to the
// occupancy it actually reaches.
//
// Wakeups are transition-only: consumers are woken when the buffer goes
// empty→non-empty and producers when it goes full→not-full, never on
// other appends or removes. This is behaviorally identical to waking on
// every operation — a task only parks at the corresponding boundary, so
// the first opposite operation after it parks *is* the transition — but
// it keeps the wake bookkeeping off the hot path.
package ringbuf

import (
	"fmt"
	"time"

	"mvedsua/internal/obs"
	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

// Kind discriminates ring buffer entries.
type Kind int

// Entry kinds.
const (
	KindSyscall  Kind = iota // a recorded syscall event
	KindPromote              // leader demoted itself; consumer becomes leader
	KindShutdown             // producer exited; consumers should stop
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindSyscall:
		return "syscall"
	case KindPromote:
		return "promote"
	case KindShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Entry is one slot of the ring buffer.
type Entry struct {
	Kind  Kind
	Event sysabi.Event

	// PutAt is the virtual time the entry was appended, stamped by the
	// buffer itself. It lets the consumer attribute how long an entry
	// queued in the ring (the "ring wait" component of per-request
	// latency) without a side table.
	PutAt time.Duration
}

// minStorage is the initial backing-array size (entries). Small so tiny
// test buffers stay tiny; doubling reaches any capacity quickly.
const minStorage = 8

// Buffer is a single-producer single-consumer ring of Entries with
// cooperative blocking semantics on the sim scheduler.
type Buffer struct {
	sched    *sim.Scheduler
	capacity int
	buf      []Entry // circular storage; len(buf) is a power of two
	head     int     // index of the oldest pending entry
	count    int     // current occupancy
	seq      uint64  // sequence numbers assigned to syscall events

	notEmpty sim.WaitQueue // consumers parked on an empty buffer
	notFull  sim.WaitQueue // producers parked on a full buffer
	drained  sim.WaitQueue // WaitDrained callers parked until empty

	closed bool

	// HighWater tracks the maximum occupancy ever reached, for reporting.
	HighWater int
	// ProducerBlocked counts how many times the producer had to wait on a
	// full buffer (the visible service pause of Figure 7).
	ProducerBlocked int
	// Dropped counts entries TryAppend refused on a full buffer — the
	// discard-policy path. A discarded follower shows Dropped > 0 while
	// a merely stalled one shows ProducerBlocked > 0; the two failure
	// shapes are distinguishable in the trace and in reports.
	Dropped int

	// Rec, if non-nil, receives ring-buffer metrics and trace events
	// (the flight recorder). Nil costs one pointer check per operation.
	Rec *obs.Recorder
}

// New returns a buffer with the given capacity (minimum 1).
func New(sched *sim.Scheduler, capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{sched: sched, capacity: capacity}
}

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return b.capacity }

// Len returns the current occupancy.
func (b *Buffer) Len() int { return b.count }

// Empty reports whether no entries are pending.
func (b *Buffer) Empty() bool { return b.count == 0 }

// Full reports whether the buffer has no free slots.
func (b *Buffer) Full() bool { return b.count >= b.capacity }

// Closed reports whether Close has been called.
func (b *Buffer) Closed() bool { return b.closed }

// NextSeq returns the sequence number the next recorded event will get.
func (b *Buffer) NextSeq() uint64 { return b.seq }

// pow2ceil returns the smallest power of two >= n (n >= 1).
func pow2ceil(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// grow enlarges the backing array (occupancy == len(buf) < capacity),
// unwrapping the circular contents so head restarts at zero.
func (b *Buffer) grow() {
	size := minStorage
	if len(b.buf) > 0 {
		size = len(b.buf) * 2
	}
	if max := pow2ceil(b.capacity); size > max {
		size = max
	}
	next := make([]Entry, size)
	for i := 0; i < b.count; i++ {
		next[i] = b.buf[(b.head+i)&(len(b.buf)-1)]
	}
	b.buf = next
	b.head = 0
}

// blockUntilNotFull parks the producer until a slot frees up or the
// buffer closes, charging the per-episode accounting Put and PutBatch
// share. It reports false if the buffer is closed.
func (b *Buffer) blockUntilNotFull(t *sim.Task) bool {
	for b.Full() {
		if b.closed {
			return false
		}
		b.ProducerBlocked++
		b.Rec.Inc(obs.CRingBlocked)
		if b.Rec.Enabled() {
			b.Rec.Emitf(obs.KindRingBlock, t.Name(), "buffer full (%d/%d)", b.count, b.capacity)
			blockedAt := t.Now()
			t.Block(&b.notFull)
			b.Rec.Observe(obs.HRingBlockWait, t.Now()-blockedAt)
			if b.Rec.ProfilingEnabled() {
				t.ChargeWait(obs.LblRingWait, blockedAt)
			}
		} else {
			t.Block(&b.notFull)
		}
	}
	return !b.closed
}

// Put appends an entry, blocking the producer task while the buffer is
// full. It reports false if the buffer was closed.
func (b *Buffer) Put(t *sim.Task, e Entry) bool {
	if !b.blockUntilNotFull(t) {
		return false
	}
	b.append(e)
	return true
}

// PutBatch appends every entry in order, blocking whenever the buffer is
// full, and returns how many entries were appended. Appended == len(batch)
// unless the buffer closes mid-batch, in which case the tail is dropped
// and ok is false. Occupancy accounting and sequence numbering are
// per-entry, exactly as if each entry had been Put individually.
func (b *Buffer) PutBatch(t *sim.Task, batch []Entry) (appended int, ok bool) {
	for _, e := range batch {
		if !b.blockUntilNotFull(t) {
			return appended, false
		}
		b.append(e)
		appended++
	}
	return appended, true
}

// append stores one entry (capacity already checked) and updates the
// occupancy accounting shared by Put, PutBatch and TryAppend.
func (b *Buffer) append(e Entry) {
	if e.Kind == KindSyscall {
		e.Event.Seq = b.seq
		b.seq++
	}
	e.PutAt = b.sched.Now()
	if b.count == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.count)&(len(b.buf)-1)] = e
	b.count++
	if b.count > b.HighWater {
		b.HighWater = b.count
	}
	if b.Rec.Enabled() {
		b.Rec.Inc(obs.CRingPut)
		b.Rec.SetGauge(obs.GRingOccupancy, int64(b.count))
		b.Rec.MaxGauge(obs.GRingHighWater, int64(b.HighWater))
		b.Rec.Emitf(obs.KindRingPut, e.Kind.String(), "%s (occ %d/%d)", entryDetail(e), b.count, b.capacity)
	}
	if b.count == 1 {
		// empty→non-empty: the only edge a consumer can be parked behind.
		b.notEmpty.WakeAll(b.sched)
	}
}

// entryDetail renders an entry for the trace.
func entryDetail(e Entry) string {
	if e.Kind == KindSyscall {
		return e.Event.String()
	}
	return e.Kind.String()
}

// TryAppend appends an entry without ever blocking: it reports false if
// the buffer is full or closed, leaving the entry unrecorded. This is
// the producer side of the discard-follower policy — instead of parking
// the leader behind a lagging follower, the monitor observes the failed
// append and drops the follower (the dMVX-style degradation path).
func (b *Buffer) TryAppend(e Entry) bool {
	if b.closed || b.Full() {
		if !b.closed {
			b.Dropped++
			b.Rec.Inc(obs.CRingDropped)
			if b.Rec.Enabled() {
				b.Rec.Emitf(obs.KindRingDiscard, e.Kind.String(), "%s dropped (%d total, occ %d/%d)",
					entryDetail(e), b.Dropped, b.count, b.capacity)
			}
		}
		return false
	}
	b.append(e)
	return true
}

// PutEvent is a convenience wrapper recording a syscall event.
func (b *Buffer) PutEvent(t *sim.Task, ev sysabi.Event) bool {
	return b.Put(t, Entry{Kind: KindSyscall, Event: ev})
}

// take removes and returns the oldest entry (occupancy already checked),
// charging the per-entry accounting Get and the drain calls share.
func (b *Buffer) take(t *sim.Task) Entry {
	e := b.buf[b.head]
	b.buf[b.head] = Entry{} // release payload references promptly
	b.head = (b.head + 1) & (len(b.buf) - 1)
	wasFull := b.Full()
	b.count--
	if b.Rec.Enabled() {
		b.Rec.Inc(obs.CRingGet)
		b.Rec.SetGauge(obs.GRingOccupancy, int64(b.count))
		b.Rec.Emitf(obs.KindRingGet, t.Name(), "%s (occ %d/%d)", entryDetail(e), b.count, b.capacity)
	}
	if wasFull {
		// full→not-full: the only edge a producer can be parked behind.
		b.notFull.WakeAll(b.sched)
	}
	if b.count == 0 {
		b.drained.WakeAll(b.sched)
	}
	return e
}

// Get removes and returns the oldest entry, blocking the consumer task
// while the buffer is empty. It reports false if the buffer was closed and
// fully drained.
func (b *Buffer) Get(t *sim.Task) (Entry, bool) {
	for b.Empty() {
		if b.closed {
			return Entry{}, false
		}
		b.blockEmpty(t)
	}
	return b.take(t), true
}

// blockEmpty parks a consumer on the empty buffer, attributing the
// blocked interval to the ring_wait profiling dimension when profiling
// is on (one episode per park, charged under the task's current label
// stack).
func (b *Buffer) blockEmpty(t *sim.Task) {
	if b.Rec.ProfilingEnabled() {
		blockedAt := t.Now()
		t.Block(&b.notEmpty)
		t.ChargeWait(obs.LblRingWait, blockedAt)
	} else {
		t.Block(&b.notEmpty)
	}
}

// DrainUpTo removes up to max pending entries (all of them when max <= 0)
// in one call, appending them to dst and returning the extended slice. It
// blocks while the buffer is empty; a return with no entries appended
// means the buffer was closed and fully drained. Unlike repeated Get
// calls, the whole batch transfers in a single scheduler round-trip, but
// occupancy accounting stays per-entry (HighWater, occupancy gauge and
// the put/get counters are indistinguishable from a Get loop).
func (b *Buffer) DrainUpTo(t *sim.Task, dst []Entry, max int) []Entry {
	for b.Empty() {
		if b.closed {
			return dst
		}
		b.blockEmpty(t)
	}
	n := b.count
	if max > 0 && n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		dst = append(dst, b.take(t))
	}
	return dst
}

// DrainInto removes every pending entry in one call, blocking while the
// buffer is empty. See DrainUpTo for the contract.
func (b *Buffer) DrainInto(t *sim.Task, dst []Entry) []Entry {
	return b.DrainUpTo(t, dst, 0)
}

// WaitDrained blocks until the buffer is empty or closed. The lockstep
// leader uses this to wait for the follower to consume each recorded
// event without burning a scheduler dispatch per poll.
func (b *Buffer) WaitDrained(t *sim.Task) {
	if b.Rec.ProfilingEnabled() && b.count > 0 && !b.closed {
		blockedAt := t.Now()
		for b.count > 0 && !b.closed {
			t.Block(&b.drained)
		}
		t.ChargeWait(obs.LblLockstepWait, blockedAt)
		return
	}
	for b.count > 0 && !b.closed {
		t.Block(&b.drained)
	}
}

// Peek returns the oldest entry without removing it, if one is available.
func (b *Buffer) Peek() (Entry, bool) {
	if b.Empty() {
		return Entry{}, false
	}
	return b.buf[b.head], true
}

// Close marks the buffer closed and wakes all waiters. Pending entries can
// still be drained with Get; Put fails afterwards.
func (b *Buffer) Close() {
	if b.closed {
		return
	}
	b.closed = true
	b.notEmpty.WakeAll(b.sched)
	b.notFull.WakeAll(b.sched)
	b.drained.WakeAll(b.sched)
}

// Reset discards all pending entries and reopens the buffer, reusing the
// allocation. Used when MVEDSUA rolls an update back and later retries.
// Sequence numbering restarts at zero: the next attached follower
// validates a fresh stream.
//
// All wait queues are woken: a producer parked on a full buffer at the
// moment of a rollback-triggered reset must re-check its condition (the
// buffer is now empty, so it proceeds), and a consumer parked on an
// empty buffer must observe the renumbered stream rather than sleep
// through the reopen. Without the wakeups such a task stays wedged
// forever — no future append can reach a queue nobody ever wakes.
func (b *Buffer) Reset() {
	for i := 0; i < b.count; i++ {
		b.buf[(b.head+i)&(len(b.buf)-1)] = Entry{}
	}
	b.head = 0
	b.count = 0
	b.seq = 0
	b.closed = false
	b.HighWater = 0
	b.ProducerBlocked = 0
	b.Dropped = 0
	b.Rec.Inc(obs.CRingResets)
	b.Rec.SetGauge(obs.GRingOccupancy, 0)
	b.Rec.Emit(obs.KindRingReset, "ringbuf", "reset: entries discarded, seq restarted at 0")
	b.notFull.WakeAll(b.sched)
	b.notEmpty.WakeAll(b.sched)
	b.drained.WakeAll(b.sched)
}
