package ringbuf

import (
	"testing"
	"testing/quick"
	"time"

	"mvedsua/internal/obs"
	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

func ev(op sysabi.Op, payload string) sysabi.Event {
	return sysabi.Event{
		Call:   sysabi.Call{Op: op, Buf: []byte(payload)},
		Result: sysabi.Result{Ret: int64(len(payload))},
	}
}

func TestPutGetOrder(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	var got []string
	s.Go("producer", func(tk *sim.Task) {
		for _, p := range []string{"a", "b", "c"} {
			b.PutEvent(tk, ev(sysabi.OpWrite, p))
		}
	})
	s.Go("consumer", func(tk *sim.Task) {
		for i := 0; i < 3; i++ {
			e, ok := b.Get(tk)
			if !ok {
				t.Error("Get failed")
				return
			}
			got = append(got, string(e.Event.Call.Buf))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got = %v", got)
	}
}

func TestSequenceNumbersAssigned(t *testing.T) {
	s := sim.New()
	b := New(s, 8)
	s.Go("t", func(tk *sim.Task) {
		for i := 0; i < 3; i++ {
			b.PutEvent(tk, ev(sysabi.OpRead, "x"))
		}
		for want := uint64(0); want < 3; want++ {
			e, _ := b.Get(tk)
			if e.Event.Seq != want {
				t.Errorf("seq = %d, want %d", e.Event.Seq, want)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestProducerBlocksWhenFull(t *testing.T) {
	s := sim.New()
	b := New(s, 2)
	produced := 0
	s.Go("producer", func(tk *sim.Task) {
		for i := 0; i < 5; i++ {
			b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
			produced++
		}
	})
	s.Go("consumer", func(tk *sim.Task) {
		// Give the producer a chance to fill the buffer.
		tk.Yield()
		if produced != 2 {
			t.Errorf("produced = %d before drain, want 2 (blocked on full)", produced)
		}
		if b.ProducerBlocked == 0 {
			t.Error("ProducerBlocked not counted")
		}
		for i := 0; i < 5; i++ {
			if _, ok := b.Get(tk); !ok {
				t.Error("Get failed")
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if produced != 5 {
		t.Fatalf("produced = %d, want 5", produced)
	}
}

// TestProducerStaysBlockedUntilDrained pins down the blocking contract
// the full-buffer policy relies on: a producer on a full buffer stays
// parked — through arbitrary virtual time — until the consumer drains a
// slot, and its pending entry is never lost or reordered.
func TestProducerStaysBlockedUntilDrained(t *testing.T) {
	s := sim.New()
	b := New(s, 1)
	var produced []string
	s.Go("producer", func(tk *sim.Task) {
		b.PutEvent(tk, ev(sysabi.OpWrite, "first"))
		produced = append(produced, "first")
		b.PutEvent(tk, ev(sysabi.OpWrite, "second")) // blocks: full
		produced = append(produced, "second")
	})
	var got []string
	s.Go("consumer", func(tk *sim.Task) {
		// Let a lot of virtual time pass while the producer is parked.
		tk.Sleep(10 * time.Second)
		if len(produced) != 1 {
			t.Errorf("produced = %v while buffer full, want just [first]", produced)
		}
		if b.ProducerBlocked == 0 {
			t.Error("ProducerBlocked not counted")
		}
		for i := 0; i < 2; i++ {
			e, ok := b.Get(tk)
			if !ok {
				t.Fatalf("Get %d failed", i)
			}
			got = append(got, string(e.Event.Call.Buf))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("got = %v", got)
	}
}

func TestTryAppendNeverBlocks(t *testing.T) {
	s := sim.New()
	b := New(s, 2)
	s.Go("t", func(tk *sim.Task) {
		if !b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "a")}) {
			t.Error("TryAppend on empty buffer failed")
		}
		if !b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "b")}) {
			t.Error("TryAppend on non-full buffer failed")
		}
		// Full: must report false immediately, without blocking the task.
		if b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "c")}) {
			t.Error("TryAppend on full buffer succeeded")
		}
		if b.Len() != 2 {
			t.Errorf("Len = %d after rejected append", b.Len())
		}
		// Sequence numbers are only consumed by accepted entries.
		e, _ := b.Get(tk)
		if e.Event.Seq != 0 {
			t.Errorf("first seq = %d", e.Event.Seq)
		}
		if !b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "d")}) {
			t.Error("TryAppend after drain failed")
		}
		e, _ = b.Get(tk)
		if string(e.Event.Call.Buf) != "b" || e.Event.Seq != 1 {
			t.Errorf("second entry = %q seq %d", e.Event.Call.Buf, e.Event.Seq)
		}
		e, _ = b.Get(tk)
		if string(e.Event.Call.Buf) != "d" || e.Event.Seq != 2 {
			t.Errorf("third entry = %q seq %d", e.Event.Call.Buf, e.Event.Seq)
		}
		b.Close()
		if b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "e")}) {
			t.Error("TryAppend on closed buffer succeeded")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTryAppendWakesConsumer(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	var got string
	s.Go("consumer", func(tk *sim.Task) {
		e, ok := b.Get(tk) // blocks: empty
		if !ok {
			t.Error("Get failed")
			return
		}
		got = string(e.Event.Call.Buf)
	})
	s.Go("producer", func(tk *sim.Task) {
		tk.Yield() // let the consumer park first
		if !b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "w")}) {
			t.Error("TryAppend failed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != "w" {
		t.Fatalf("consumer got %q", got)
	}
}

func TestConsumerBlocksWhenEmpty(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	var order []string
	s.Go("consumer", func(tk *sim.Task) {
		e, _ := b.Get(tk)
		order = append(order, "got:"+string(e.Event.Call.Buf))
	})
	s.Go("producer", func(tk *sim.Task) {
		order = append(order, "put")
		b.PutEvent(tk, ev(sysabi.OpWrite, "z"))
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "put" || order[1] != "got:z" {
		t.Fatalf("order = %v", order)
	}
}

func TestCloseUnblocksConsumer(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	var ok bool
	ok = true
	s.Go("consumer", func(tk *sim.Task) {
		_, ok = b.Get(tk)
	})
	s.Go("closer", func(tk *sim.Task) {
		tk.Yield()
		b.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ok {
		t.Fatal("Get on closed empty buffer should report false")
	}
}

func TestCloseUnblocksProducer(t *testing.T) {
	s := sim.New()
	b := New(s, 1)
	var second bool
	second = true
	s.Go("producer", func(tk *sim.Task) {
		b.PutEvent(tk, ev(sysabi.OpWrite, "a"))
		second = b.PutEvent(tk, ev(sysabi.OpWrite, "b")) // blocks: full
	})
	s.Go("closer", func(tk *sim.Task) {
		tk.Yield()
		b.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if second {
		t.Fatal("Put on closed buffer should report false")
	}
}

func TestDrainAfterClose(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	s.Go("t", func(tk *sim.Task) {
		b.PutEvent(tk, ev(sysabi.OpWrite, "a"))
		b.PutEvent(tk, ev(sysabi.OpWrite, "b"))
		b.Close()
		e, ok := b.Get(tk)
		if !ok || string(e.Event.Call.Buf) != "a" {
			t.Errorf("first drain = %v %v", e, ok)
		}
		e, ok = b.Get(tk)
		if !ok || string(e.Event.Call.Buf) != "b" {
			t.Errorf("second drain = %v %v", e, ok)
		}
		if _, ok = b.Get(tk); ok {
			t.Error("Get after full drain should fail")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPromoteEntryPassesThrough(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	s.Go("t", func(tk *sim.Task) {
		b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
		b.Put(tk, Entry{Kind: KindPromote})
		e, _ := b.Get(tk)
		if e.Kind != KindSyscall {
			t.Errorf("first = %v", e.Kind)
		}
		e, _ = b.Get(tk)
		if e.Kind != KindPromote {
			t.Errorf("second = %v, want promote", e.Kind)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPeek(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	s.Go("t", func(tk *sim.Task) {
		if _, ok := b.Peek(); ok {
			t.Error("Peek on empty should fail")
		}
		b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
		e, ok := b.Peek()
		if !ok || string(e.Event.Call.Buf) != "x" {
			t.Errorf("Peek = %v %v", e, ok)
		}
		if b.Len() != 1 {
			t.Error("Peek consumed the entry")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestHighWaterTracking(t *testing.T) {
	s := sim.New()
	b := New(s, 8)
	s.Go("t", func(tk *sim.Task) {
		for i := 0; i < 5; i++ {
			b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
		}
		for i := 0; i < 5; i++ {
			b.Get(tk)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.HighWater != 5 {
		t.Fatalf("HighWater = %d, want 5", b.HighWater)
	}
}

func TestReset(t *testing.T) {
	s := sim.New()
	b := New(s, 2)
	s.Go("t", func(tk *sim.Task) {
		b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
		b.Close()
		b.Reset()
		if b.Closed() || !b.Empty() || b.NextSeq() != 0 {
			t.Error("Reset did not restore a fresh buffer")
		}
		if !b.PutEvent(tk, ev(sysabi.OpWrite, "y")) {
			t.Error("Put after Reset failed")
		}
		e, _ := b.Get(tk)
		if string(e.Event.Call.Buf) != "y" || e.Event.Seq != 0 {
			t.Errorf("entry after reset = %v", e)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMinimumCapacity(t *testing.T) {
	s := sim.New()
	b := New(s, 0)
	if b.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", b.Cap())
	}
}

func TestKindString(t *testing.T) {
	if KindSyscall.String() != "syscall" || KindPromote.String() != "promote" ||
		KindShutdown.String() != "shutdown" || Kind(9).String() != "kind(9)" {
		t.Fatal("Kind.String mismatch")
	}
}

// Property: for any sequence of payloads and any capacity, FIFO order and
// content are preserved through the buffer.
func TestFIFOProperty(t *testing.T) {
	f := func(payloads [][]byte, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		if len(payloads) > 64 {
			payloads = payloads[:64]
		}
		s := sim.New()
		b := New(s, capacity)
		var got [][]byte
		s.Go("producer", func(tk *sim.Task) {
			for _, p := range payloads {
				b.PutEvent(tk, sysabi.Event{Call: sysabi.Call{Op: sysabi.OpWrite, Buf: p}})
			}
			b.Close()
		})
		s.Go("consumer", func(tk *sim.Task) {
			for {
				e, ok := b.Get(tk)
				if !ok {
					return
				}
				got = append(got, e.Event.Call.Buf)
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		if len(got) != len(payloads) {
			return false
		}
		for i := range got {
			if string(got[i]) != string(payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy never exceeds capacity.
func TestBoundedOccupancyProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		count := int(n % 40)
		s := sim.New()
		b := New(s, capacity)
		okAll := true
		s.Go("producer", func(tk *sim.Task) {
			for i := 0; i < count; i++ {
				b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
				if b.Len() > b.Cap() {
					okAll = false
				}
			}
			b.Close()
		})
		s.Go("consumer", func(tk *sim.Task) {
			for {
				if _, ok := b.Get(tk); !ok {
					return
				}
				if b.Len() > b.Cap() {
					okAll = false
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return okAll && b.HighWater <= b.Cap()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestResetWakesBlockedProducer is the regression test for the Reset
// wakeup bug: a producer parked on a full buffer when Reset fires must
// be woken and observe the now-empty buffer. Before the fix, Reset
// cleared the queue without waking either wait queue, so the producer
// stayed parked forever — the scheduler deadlocked with a runnable-free
// task set.
func TestResetWakesBlockedProducer(t *testing.T) {
	s := sim.New()
	b := New(s, 1)
	var produced []uint64
	s.Go("producer", func(tk *sim.Task) {
		b.PutEvent(tk, ev(sysabi.OpWrite, "a"))
		// Blocks: buffer full. Only the Reset below can free it.
		if !b.PutEvent(tk, ev(sysabi.OpWrite, "b")) {
			t.Error("Put after Reset reported closed")
			return
		}
		e, ok := b.Peek()
		if !ok {
			t.Error("entry missing after post-Reset Put")
			return
		}
		produced = append(produced, e.Event.Seq)
	})
	s.Go("resetter", func(tk *sim.Task) {
		tk.Sleep(time.Second) // the producer is parked by now
		if b.ProducerBlocked == 0 {
			t.Error("producer never blocked; test is not exercising the wakeup")
		}
		b.Reset()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v (producer still parked across Reset?)", err)
	}
	// The renumbered stream restarts at zero: the pre-reset "a" (seq 0)
	// was discarded, and the post-reset "b" gets seq 0 again.
	if len(produced) != 1 || produced[0] != 0 {
		t.Fatalf("post-reset seqs = %v, want [0]", produced)
	}
}

// TestResetWakesBlockedConsumer: the symmetric case — a consumer parked
// on an empty buffer must re-check after Reset reopens the stream, and
// then consume the renumbered entries.
func TestResetWakesBlockedConsumer(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	var got uint64 = 99
	s.Go("consumer", func(tk *sim.Task) {
		e, ok := b.Get(tk) // blocks: empty
		if !ok {
			t.Error("Get reported closed")
			return
		}
		got = e.Event.Seq
	})
	s.Go("resetter", func(tk *sim.Task) {
		tk.Sleep(time.Second)
		b.Reset()
		// The woken consumer sees the buffer still empty and parks again;
		// this Put delivers the first renumbered entry.
		b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 0 {
		t.Fatalf("seq after reset = %d, want 0", got)
	}
}

// TestResetRenumbersMidStream: sequence numbering restarts at zero even
// when the buffer was mid-stream (seq well above zero) at reset time.
func TestResetRenumbersMidStream(t *testing.T) {
	s := sim.New()
	b := New(s, 8)
	s.Go("t", func(tk *sim.Task) {
		for i := 0; i < 5; i++ {
			b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
		}
		b.Get(tk)
		b.Get(tk)
		if b.NextSeq() != 5 {
			t.Fatalf("NextSeq = %d before reset", b.NextSeq())
		}
		b.Reset()
		if b.NextSeq() != 0 || !b.Empty() {
			t.Fatalf("after reset: NextSeq=%d Len=%d", b.NextSeq(), b.Len())
		}
		b.PutEvent(tk, ev(sysabi.OpWrite, "y"))
		e, _ := b.Get(tk)
		if e.Event.Seq != 0 {
			t.Fatalf("first post-reset seq = %d, want 0", e.Event.Seq)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestPeekOnClosedDrainedBuffer: Peek is a pure observation — on a
// closed buffer it keeps returning pending entries until they are
// drained, then reports nothing without blocking or panicking.
func TestPeekOnClosedDrainedBuffer(t *testing.T) {
	s := sim.New()
	b := New(s, 4)
	s.Go("t", func(tk *sim.Task) {
		b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
		b.Close()
		if e, ok := b.Peek(); !ok || string(e.Event.Call.Buf) != "x" {
			t.Errorf("Peek on closed buffer with pending entry = %v %v", e, ok)
		}
		b.Get(tk)
		if _, ok := b.Peek(); ok {
			t.Error("Peek on closed-and-drained buffer reported an entry")
		}
		if _, ok := b.Get(tk); ok {
			t.Error("Get on closed-and-drained buffer reported an entry")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestDroppedCounter: TryAppend on a full buffer counts each refusal in
// Dropped, and Reset clears it with the rest of the accounting.
func TestDroppedCounter(t *testing.T) {
	s := sim.New()
	b := New(s, 2)
	s.Go("t", func(tk *sim.Task) {
		b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "a")})
		b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "b")})
		for i := 0; i < 3; i++ {
			if b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "x")}) {
				t.Error("TryAppend on full buffer succeeded")
			}
		}
		if b.Dropped != 3 {
			t.Errorf("Dropped = %d, want 3", b.Dropped)
		}
		// A refusal on a closed buffer is not a discard-policy drop.
		b.Close()
		b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "y")})
		if b.Dropped != 3 {
			t.Errorf("Dropped = %d after closed TryAppend, want 3", b.Dropped)
		}
		b.Reset()
		if b.Dropped != 0 || b.HighWater != 0 || b.ProducerBlocked != 0 {
			t.Errorf("Reset left accounting: dropped=%d hw=%d blocked=%d",
				b.Dropped, b.HighWater, b.ProducerBlocked)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestRecorderMetricsFlow: with a recorder attached, the buffer's
// accounting (puts, gets, blocks, drops, high water) lands in the
// metrics registry and survives into a snapshot.
func TestRecorderMetricsFlow(t *testing.T) {
	s := sim.New()
	rec := obs.New(s.Now, obs.Options{})
	b := New(s, 2)
	b.Rec = rec
	s.Go("producer", func(tk *sim.Task) {
		for i := 0; i < 4; i++ {
			b.PutEvent(tk, ev(sysabi.OpWrite, "x"))
		}
		b.TryAppend(Entry{Kind: KindSyscall, Event: ev(sysabi.OpWrite, "x")})
	})
	s.Go("consumer", func(tk *sim.Task) {
		tk.Sleep(time.Second) // let the producer fill and block
		for i := 0; i < 4; i++ {
			b.Get(tk)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := rec.Snapshot()
	if snap.Counters[obs.CRingPut] != 4 || snap.Counters[obs.CRingGet] != 4 {
		t.Fatalf("put/get = %d/%d", snap.Counters[obs.CRingPut], snap.Counters[obs.CRingGet])
	}
	if snap.Counters[obs.CRingBlocked] != int64(b.ProducerBlocked) || b.ProducerBlocked == 0 {
		t.Fatalf("blocked counter %d vs ProducerBlocked %d",
			snap.Counters[obs.CRingBlocked], b.ProducerBlocked)
	}
	if snap.Counters[obs.CRingDropped] != 1 {
		t.Fatalf("dropped counter = %d", snap.Counters[obs.CRingDropped])
	}
	if snap.Gauges[obs.GRingHighWater] != int64(2) {
		t.Fatalf("highwater gauge = %d", snap.Gauges[obs.GRingHighWater])
	}
	if h := snap.Histograms[obs.HRingBlockWait]; h.Count == 0 || h.MaxNS <= 0 {
		t.Fatalf("block wait histogram = %+v", h)
	}
}
