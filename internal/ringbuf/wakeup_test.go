package ringbuf

import (
	"strings"
	"testing"

	"mvedsua/internal/sim"
)

// Tests for the v2 transition-only wakeup contract: consumers are woken
// exactly on the empty→non-empty edge, producers exactly on the
// full→not-full edge, and (the PR 2 regression, re-pinned against the
// circular implementation) Reset wakes everything parked on either
// queue. WaitDrained waiters are covered by the same edges.

// countDispatches returns how many trace entries dispatched the named
// task at or after the first entry matching `from`.
func countDispatches(trace []string, task, from string) int {
	started := from == ""
	n := 0
	for _, line := range trace {
		if !started && strings.HasSuffix(line, ":"+from) {
			started = true
		}
		if started && strings.HasSuffix(line, ":"+task) {
			n++
		}
	}
	return n
}

// TestTransitionWakeupConsumer parks a consumer on an empty ring and
// feeds it a 3-entry batch: the consumer must be dispatched exactly once
// for the whole batch (woken on the empty→non-empty edge only), and must
// drain all three entries in that one dispatch.
func TestTransitionWakeupConsumer(t *testing.T) {
	s := sim.New()
	buf := New(s, 8)
	var got []Entry
	s.Go("consumer", func(tk *sim.Task) {
		got = buf.DrainInto(tk, nil) // parks: ring is empty
	})
	s.Go("producer", func(tk *sim.Task) {
		s.SetTracing(true)
		batch := []Entry{{Kind: KindSyscall}, {Kind: KindSyscall}, {Kind: KindSyscall}}
		if n, ok := buf.PutBatch(tk, batch); n != 3 || !ok {
			t.Errorf("PutBatch = (%d,%v), want (3,true)", n, ok)
		}
		buf.Close() // let the consumer exit once drained
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("consumer drained %d entries, want 3", len(got))
	}
	if n := countDispatches(s.Trace(), "consumer", ""); n != 1 {
		t.Errorf("consumer dispatched %d times after parking, want 1 (transition-only wake)\ntrace: %v", n, s.Trace())
	}
}

// TestTransitionWakeupProducer parks a producer on a full ring and has
// the consumer remove two entries in one batched drain: the producer
// must be dispatched exactly once (woken on the full→not-full edge, not
// per removed entry) and then complete its pending put.
func TestTransitionWakeupProducer(t *testing.T) {
	s := sim.New()
	buf := New(s, 2)
	produced := 0
	s.Go("producer", func(tk *sim.Task) {
		for i := 0; i < 3; i++ {
			buf.Put(tk, Entry{Kind: KindSyscall}) // third Put parks: ring full
			produced++
		}
	})
	s.Go("consumer", func(tk *sim.Task) {
		s.SetTracing(true)
		if got := buf.DrainInto(tk, nil); len(got) != 2 {
			t.Errorf("drained %d entries, want 2", len(got))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if produced != 3 {
		t.Fatalf("produced = %d, want 3", produced)
	}
	if buf.ProducerBlocked != 1 {
		t.Errorf("ProducerBlocked = %d, want 1", buf.ProducerBlocked)
	}
	if n := countDispatches(s.Trace(), "producer", ""); n != 1 {
		t.Errorf("producer dispatched %d times after parking, want 1 (transition-only wake)\ntrace: %v", n, s.Trace())
	}
}

// TestResetWakesBothQueuesV2 re-pins the PR 2 regression against the
// circular implementation: a producer parked on a full ring and (after
// the producer completes) a consumer parked on an empty one must both be
// released by Reset, not sleep through the reopen.
func TestResetWakesBothQueuesV2(t *testing.T) {
	s := sim.New()
	buf := New(s, 1)
	producerDone, consumerDone := false, false
	s.Go("producer", func(tk *sim.Task) {
		buf.Put(tk, Entry{Kind: KindSyscall})
		buf.Put(tk, Entry{Kind: KindSyscall}) // parks: full
		producerDone = true
	})
	s.Go("resetter1", func(tk *sim.Task) {
		buf.Reset() // frees the parked producer
	})
	s.Go("consumer", func(tk *sim.Task) {
		// The producer's second Put lands post-reset; drain it, then
		// park on the now-empty ring.
		buf.Get(tk)
		buf.Get(tk) // parks: empty
		consumerDone = true
	})
	s.Go("resetter2", func(tk *sim.Task) {
		tk.Yield() // let the consumer park first
		buf.Reset()
		buf.Close() // consumer observes closed-and-drained
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !producerDone {
		t.Error("producer still parked after Reset")
	}
	if !consumerDone {
		t.Error("consumer still parked after Reset+Close")
	}
}

// TestWaitDrained covers the third wait queue: a waiter parks until the
// consumer empties the ring and resumes at that edge; Close and Reset
// release waiters too.
func TestWaitDrained(t *testing.T) {
	s := sim.New()
	buf := New(s, 8)
	var emptyAtResume bool
	s.Go("producer", func(tk *sim.Task) {
		buf.PutBatch(tk, []Entry{{Kind: KindSyscall}, {Kind: KindSyscall}})
		buf.WaitDrained(tk) // parks: two entries pending
		emptyAtResume = buf.Empty()
	})
	s.Go("consumer", func(tk *sim.Task) {
		buf.Get(tk) // removing one entry must NOT wake the waiter
		buf.Get(tk) // removing the last one must
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !emptyAtResume {
		t.Error("WaitDrained resumed with entries still pending")
	}

	// Close releases a waiter even with entries pending.
	s2 := sim.New()
	buf2 := New(s2, 8)
	released := false
	s2.Go("waiter", func(tk *sim.Task) {
		buf2.Put(tk, Entry{Kind: KindSyscall})
		buf2.WaitDrained(tk)
		released = true
	})
	s2.Go("closer", func(tk *sim.Task) { buf2.Close() })
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if !released {
		t.Error("WaitDrained not released by Close")
	}

	// Reset empties the ring and must release a waiter the same way.
	s3 := sim.New()
	buf3 := New(s3, 8)
	released3 := false
	s3.Go("waiter", func(tk *sim.Task) {
		buf3.Put(tk, Entry{Kind: KindSyscall})
		buf3.WaitDrained(tk)
		released3 = true
	})
	s3.Go("resetter", func(tk *sim.Task) { buf3.Reset() })
	if err := s3.Run(); err != nil {
		t.Fatal(err)
	}
	if !released3 {
		t.Error("WaitDrained not released by Reset")
	}
}

// TestPutBatchBlocksThroughFullRing pushes a batch three times the ring
// capacity through a slow consumer: every entry must arrive in order
// with consecutive sequence numbers, and the producer must have parked
// at least once per refill.
func TestPutBatchBlocksThroughFullRing(t *testing.T) {
	s := sim.New()
	buf := New(s, 2)
	batch := make([]Entry, 6)
	for i := range batch {
		batch[i] = Entry{Kind: KindSyscall}
	}
	var got []Entry
	s.Go("producer", func(tk *sim.Task) {
		if n, ok := buf.PutBatch(tk, batch); n != 6 || !ok {
			t.Errorf("PutBatch = (%d,%v), want (6,true)", n, ok)
		}
		buf.Close()
	})
	s.Go("consumer", func(tk *sim.Task) {
		for {
			e, ok := buf.Get(tk)
			if !ok {
				return
			}
			got = append(got, e)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("consumed %d entries, want 6", len(got))
	}
	for i, e := range got {
		if e.Event.Seq != uint64(i) {
			t.Errorf("entry %d: seq %d, want %d", i, e.Event.Seq, i)
		}
	}
	if buf.ProducerBlocked == 0 {
		t.Error("ProducerBlocked = 0, want blocking on the full ring")
	}
}

// TestPutBatchClosedMidway closes the ring while the producer is parked
// mid-batch: PutBatch must report the prefix it managed to append.
func TestPutBatchClosedMidway(t *testing.T) {
	s := sim.New()
	buf := New(s, 2)
	s.Go("producer", func(tk *sim.Task) {
		batch := make([]Entry, 5)
		for i := range batch {
			batch[i] = Entry{Kind: KindSyscall}
		}
		n, ok := buf.PutBatch(tk, batch) // parks after 2
		if n != 2 || ok {
			t.Errorf("PutBatch = (%d,%v), want (2,false)", n, ok)
		}
	})
	s.Go("closer", func(tk *sim.Task) {
		buf.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainUpToBound verifies the bounded drain takes at most max
// entries and leaves the rest, preserving FIFO order across the split.
func TestDrainUpToBound(t *testing.T) {
	s := sim.New()
	buf := New(s, 8)
	s.Go("driver", func(tk *sim.Task) {
		for i := 0; i < 5; i++ {
			buf.Put(tk, Entry{Kind: KindSyscall})
		}
		first := buf.DrainUpTo(tk, nil, 2)
		if len(first) != 2 || first[0].Event.Seq != 0 || first[1].Event.Seq != 1 {
			t.Errorf("DrainUpTo(2) = %+v, want seqs 0,1", first)
		}
		if buf.Len() != 3 {
			t.Errorf("Len after bounded drain = %d, want 3", buf.Len())
		}
		rest := buf.DrainInto(tk, nil)
		if len(rest) != 3 || rest[0].Event.Seq != 2 {
			t.Errorf("DrainInto = %+v, want seqs 2,3,4", rest)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
