// Package rolling implements the industry-standard rolling upgrade the
// paper argues against for stateful services (§1.1, §2.2), so the
// trade-offs can be measured instead of asserted.
//
// A Cluster is a set of sharded key-value nodes. Three upgrade
// strategies are provided:
//
//   - StrategyStateless: stop, patch, restart each node — in-memory
//     state is dropped (the §2.2 failure mode: "ultimately, individual
//     nodes must be restarted, and if these are stateful, that state
//     will be lost").
//   - StrategyCheckpoint: checkpoint state on shutdown and restore on
//     restart — no loss, but the node is down for a time proportional
//     to its state size (the paper's Redis example: 28s for a 10GB
//     heap).
//   - StrategyMVEDSUA: each node updates in place under its own MVEDSUA
//     controller — no loss and no downtime.
//
// Nodes are replaced blue/green style: the new instance binds a fresh
// port and the routing table is swapped, as a rolling upgrade of
// container replicas would.
package rolling

import (
	"fmt"
	"time"

	"mvedsua/internal/sysabi"

	"mvedsua/internal/apps/kvstore"
	"mvedsua/internal/core"
	"mvedsua/internal/dsu"
	"mvedsua/internal/sim"
	"mvedsua/internal/vos"
)

// Strategy selects how the cluster is upgraded.
type Strategy int

// Upgrade strategies.
const (
	StrategyStateless Strategy = iota
	StrategyCheckpoint
	StrategyMVEDSUA
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyStateless:
		return "rolling (stateless restart)"
	case StrategyCheckpoint:
		return "rolling (checkpoint/restore)"
	case StrategyMVEDSUA:
		return "per-node MVEDSUA"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// CheckpointPerEntry is the virtual time to persist + restore one store
// entry during a checkpointed restart (dump and load).
const CheckpointPerEntry = 10 * time.Microsecond

// Node is one cluster member.
type Node struct {
	ID   int
	Port int64

	app *kvstore.Server
	// exactly one of rt (rolling strategies) or ctl (MVEDSUA) is set.
	rt  *dsu.Runtime
	ctl *core.Controller

	gen  int // restart generation; each restart binds a fresh port
	down bool
}

// Down reports whether the node is currently unavailable.
func (n *Node) Down() bool { return n.down }

// Version returns the node's currently running version.
func (n *Node) Version() string {
	if n.ctl != nil {
		return n.ctl.LeaderRuntime().App().Version()
	}
	return n.rt.App().Version()
}

// Cluster is a sharded key-value service.
type Cluster struct {
	sched    *sim.Scheduler
	kernel   *vos.Kernel
	strategy Strategy
	nodes    []*Node

	// Upgrades counts completed node upgrades.
	Upgrades int
}

// BasePort is node 0's first port; node i generation g listens on
// BasePort + i + 1000*g.
const BasePort = 7000

// NewCluster builds and starts n nodes running version on the kernel's
// scheduler.
func NewCluster(k *vos.Kernel, n int, version string, strategy Strategy) *Cluster {
	c := &Cluster{sched: k.Scheduler(), kernel: k, strategy: strategy}
	for i := 0; i < n; i++ {
		node := &Node{ID: i, Port: BasePort + int64(i)}
		c.nodes = append(c.nodes, node)
		c.startNode(node, kvstore.New(specForPort(version, node.Port)))
	}
	return c
}

// specForPort builds a node app spec; nodes are ordinary kvstore
// servers, distinguished only by their listening port.
func specForPort(version string, port int64) kvstore.Spec {
	return kvstore.SpecFor(version, false)
}

// startNode boots app as the node's serving process on node.Port.
func (c *Cluster) startNode(node *Node, app *kvstore.Server) {
	app.ListenPort = node.Port
	node.app = app
	switch c.strategy {
	case StrategyMVEDSUA:
		node.ctl = core.New(c.kernel, core.Config{})
		node.ctl.Start(app)
	default:
		node.rt = dsu.NewRuntime(c.sched, app, dsu.Config{
			Name:       fmt.Sprintf("node%d-g%d", node.ID, node.gen),
			Dispatcher: c.kernel,
		})
		node.rt.Start()
	}
	node.down = false
}

// Nodes returns the cluster members.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Shards returns the number of nodes (one shard each).
func (c *Cluster) Shards() int { return len(c.nodes) }

// PortFor returns the current port serving the shard for key.
func (c *Cluster) PortFor(key string) int64 {
	return c.nodes[shardOf(key, len(c.nodes))].Port
}

// NodeFor returns the node owning key's shard.
func (c *Cluster) NodeFor(key string) *Node {
	return c.nodes[shardOf(key, len(c.nodes))]
}

func shardOf(key string, n int) int {
	// FNV-1a, which spreads short numeric suffixes well.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// UpgradeAll upgrades every node in turn to the target version; t is
// the orchestrating task (the operator). For rolling strategies each
// node is stopped and replaced; for MVEDSUA each node runs the full
// update/promote/commit lifecycle while serving.
func (c *Cluster) UpgradeAll(t *sim.Task, from, to string, settle time.Duration) error {
	for _, node := range c.nodes {
		if err := c.upgradeNode(t, node, from, to); err != nil {
			return err
		}
		t.Sleep(settle) // the "rolling" pacing between nodes
	}
	return nil
}

func (c *Cluster) upgradeNode(t *sim.Task, node *Node, from, to string) error {
	switch c.strategy {
	case StrategyMVEDSUA:
		return c.upgradeMVEDSUA(t, node, from, to)
	default:
		return c.upgradeRestart(t, node, to)
	}
}

// upgradeRestart is the rolling path: stop the node (dropping or
// checkpointing state), then start the new version on a fresh port and
// swap the routing entry.
func (c *Cluster) upgradeRestart(t *sim.Task, node *Node, to string) error {
	old := node.app
	// Drain & stop: the node disappears; in-flight clients see resets,
	// as the dying process's descriptors are closed by the kernel.
	node.down = true
	node.rt.KillAll()
	for _, fd := range old.NetworkFDs() {
		c.kernel.Invoke(t, sysabi.Call{Op: sysabi.OpClose, FD: fd})
	}

	var restored *kvstore.Server
	downFor := 50 * time.Millisecond // stop/patch/start floor
	if c.strategy == StrategyCheckpoint {
		// Persist and re-load the whole store: the §2.2 pause.
		downFor += time.Duration(old.DBSize()) * CheckpointPerEntry
		restored = old.Fork().(*kvstore.Server)
		restored.ResetSessions()
	}
	t.Sleep(downFor)

	node.gen++
	node.Port = BasePort + int64(node.ID) + 1000*int64(node.gen)
	app := kvstore.New(specForPort(to, node.Port))
	if restored != nil {
		app.AdoptState(restored)
	}
	c.startNode(node, app)
	c.Upgrades++
	return nil
}

// upgradeMVEDSUA runs the in-place MVEDSUA lifecycle on the node. The
// node keeps serving throughout; no routing change is needed.
func (c *Cluster) upgradeMVEDSUA(t *sim.Task, node *Node, from, to string) error {
	v := kvstore.Update(from, to, kvstore.UpdateOpts{})
	if !node.ctl.Update(v) {
		return fmt.Errorf("node %d: update rejected", node.ID)
	}
	deadline := t.Now() + 30*time.Second
	for node.ctl.Stage() != core.StageOutdatedLeader {
		if t.Now() > deadline {
			return fmt.Errorf("node %d: update never installed (stage %v)", node.ID, node.ctl.Stage())
		}
		t.Sleep(10 * time.Millisecond)
	}
	// A short warmup period of validation, then promote and commit.
	t.Sleep(100 * time.Millisecond)
	node.ctl.Promote()
	for node.ctl.Stage() != core.StageUpdatedLeader {
		if t.Now() > deadline {
			return fmt.Errorf("node %d: promotion stuck (stage %v)", node.ID, node.ctl.Stage())
		}
		t.Sleep(10 * time.Millisecond)
	}
	t.Sleep(50 * time.Millisecond)
	node.ctl.Commit()
	c.Upgrades++
	return nil
}

// Teardown kills all node tasks so the scheduler can drain.
func (c *Cluster) Teardown() {
	for _, node := range c.nodes {
		if node.ctl != nil {
			if rt := node.ctl.FollowerRuntime(); rt != nil {
				rt.KillAll()
			}
			node.ctl.Monitor().DropFollower()
			node.ctl.LeaderRuntime().KillAll()
		} else if node.rt != nil {
			node.rt.KillAll()
		}
	}
}
