package rolling

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
	"mvedsua/internal/vos"
)

func TestShardingIsStableAndCovers(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%04d", i)
		s1 := shardOf(k, 4)
		s2 := shardOf(k, 4)
		if s1 != s2 {
			t.Fatalf("shardOf not stable for %q", k)
		}
		if s1 < 0 || s1 >= 4 {
			t.Fatalf("shard out of range: %d", s1)
		}
		seen[s1] = true
	}
	if len(seen) != 4 {
		t.Fatalf("keys cover %d/4 shards", len(seen))
	}
}

func TestClusterServesAllShards(t *testing.T) {
	s := sim.New()
	k := vos.NewKernel(s)
	cluster := NewCluster(k, 3, "2.0.0", StrategyStateless)
	s.Go("client", func(tk *sim.Task) {
		defer cluster.Teardown()
		cl := NewClient(cluster, 1)
		defer cl.Close(tk)
		for i := 0; i < 30; i++ {
			cl.Step(tk, 50)
		}
		if cl.Metrics.Errors != 0 {
			t.Errorf("errors without any upgrade: %d", cl.Metrics.Errors)
		}
		if cl.Metrics.Ops != 30 {
			t.Errorf("ops = %d", cl.Metrics.Ops)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStatelessRestartLosesState(t *testing.T) {
	res, err := compareOne(StrategyStateless, 2, 0, "2.0.0", "2.0.1")
	if err != nil {
		t.Fatalf("compareOne: %v", err)
	}
	if res.LostKeys == 0 {
		t.Error("stateless rolling restart lost no keys; the §2.2 failure mode did not manifest")
	}
	if res.Errors == 0 {
		t.Error("no client-visible errors despite node restarts")
	}
	for _, v := range res.Versions {
		if v != "2.0.1" {
			t.Errorf("node version = %s", v)
		}
	}
}

func TestCheckpointRestartKeepsStateButPauses(t *testing.T) {
	// 20k preloaded entries -> 200ms checkpoint/restore per node.
	res, err := compareOne(StrategyCheckpoint, 2, 20000, "2.0.0", "2.0.1")
	if err != nil {
		t.Fatalf("compareOne: %v", err)
	}
	if res.LostKeys != 0 {
		t.Errorf("checkpointed restart lost %d keys", res.LostKeys)
	}
	if res.MaxLatency < 100*time.Millisecond {
		t.Errorf("max latency = %v, want a visible restore pause", res.MaxLatency)
	}
}

func TestMVEDSUAUpgradeLosesNothingAndNeverPauses(t *testing.T) {
	res, err := compareOne(StrategyMVEDSUA, 2, 20000, "2.0.0", "2.0.1")
	if err != nil {
		t.Fatalf("compareOne: %v", err)
	}
	if res.LostKeys != 0 {
		t.Errorf("MVEDSUA lost %d keys", res.LostKeys)
	}
	if res.Errors != 0 {
		t.Errorf("MVEDSUA caused %d client errors", res.Errors)
	}
	if res.MaxLatency > 50*time.Millisecond {
		t.Errorf("max latency = %v, want no visible pause", res.MaxLatency)
	}
	for _, v := range res.Versions {
		if v != "2.0.1" {
			t.Errorf("node version = %s", v)
		}
	}
}

func TestCompareOrdersStrategies(t *testing.T) {
	results, err := Compare(2, 5000, "2.0.0", "2.0.1")
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	stateless, checkpoint, mved := results[0], results[1], results[2]
	if stateless.LostKeys == 0 {
		t.Error("stateless lost nothing")
	}
	if checkpoint.LostKeys != 0 || mved.LostKeys != 0 {
		t.Error("checkpoint/mvedsua lost keys")
	}
	if !(mved.MaxLatency < checkpoint.MaxLatency) {
		t.Errorf("latency ordering broken: mvedsua %v vs checkpoint %v",
			mved.MaxLatency, checkpoint.MaxLatency)
	}
	out := FormatComparison(results)
	if !strings.Contains(out, "per-node MVEDSUA") {
		t.Errorf("FormatComparison = %s", out)
	}
}

func TestNodePortsMoveAcrossRestart(t *testing.T) {
	s := sim.New()
	k := vos.NewKernel(s)
	cluster := NewCluster(k, 1, "2.0.0", StrategyStateless)
	node := cluster.Nodes()[0]
	before := node.Port
	s.Go("op", func(tk *sim.Task) {
		defer cluster.Teardown()
		tk.Sleep(10 * time.Millisecond)
		if err := cluster.upgradeNode(tk, node, "2.0.0", "2.0.1"); err != nil {
			t.Errorf("upgradeNode: %v", err)
		}
		if node.Port == before {
			t.Error("replacement node kept the old port")
		}
		tk.Yield() // let the replacement bind
		tk.Yield()
		// The new port serves.
		r := k.Invoke(tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{node.Port, 0}})
		if !r.OK() {
			t.Errorf("connect to new node: %v", r.Err)
		}
		k.Invoke(tk, sysabi.Call{Op: sysabi.OpClose, FD: int(r.Ret)})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyStateless.String() == "" || StrategyMVEDSUA.String() == "" ||
		Strategy(9).String() != "strategy(9)" {
		t.Fatal("Strategy.String mismatch")
	}
}
