package rolling

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
	"mvedsua/internal/vos"
)

// ClientMetrics aggregates what clients observe across an upgrade.
type ClientMetrics struct {
	Ops        int64
	Errors     int64 // failed/retried operations (connection refused/reset)
	LostKeys   int64 // GETs that missed a key this client had stored
	MaxLatency time.Duration
}

// Client is a sharded-cluster client: it routes each key to its shard's
// current port, reconnects around node restarts, and detects lost
// updates.
type Client struct {
	cluster *Cluster
	kernel  *vos.Kernel
	rng     *rand.Rand

	conns   map[int64]int // port -> fd
	written map[string]string

	// Metrics accumulates observations.
	Metrics ClientMetrics
}

// NewClient builds a deterministic client.
func NewClient(c *Cluster, seed int64) *Client {
	return &Client{
		cluster: c,
		kernel:  c.kernel,
		rng:     rand.New(rand.NewSource(seed)),
		conns:   make(map[int64]int),
		written: make(map[string]string),
	}
}

// dial returns a connection fd for port, or -1 if the node is down.
func (cl *Client) dial(tk *sim.Task, port int64) int {
	if fd, ok := cl.conns[port]; ok {
		return fd
	}
	r := cl.kernel.Invoke(tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{port, 0}})
	if !r.OK() {
		return -1
	}
	cl.conns[port] = int(r.Ret)
	return int(r.Ret)
}

// roundTrip sends one command and reads the reply; "" means failure.
func (cl *Client) roundTrip(tk *sim.Task, fd int, cmd string) string {
	r := cl.kernel.Invoke(tk, sysabi.Call{Op: sysabi.OpWrite, FD: fd, Buf: []byte(cmd + "\r\n")})
	if !r.OK() {
		return ""
	}
	r = cl.kernel.Invoke(tk, sysabi.Call{Op: sysabi.OpRead, FD: fd, Args: [2]int64{4096, 0}})
	if !r.OK() || r.Ret == 0 {
		return ""
	}
	return string(r.Data)
}

// Do executes one command against key's shard, retrying through node
// downtime. It returns the final reply.
func (cl *Client) Do(tk *sim.Task, key, cmd string) string {
	start := tk.Now()
	defer func() {
		if d := tk.Now() - start; d > cl.Metrics.MaxLatency {
			cl.Metrics.MaxLatency = d
		}
	}()
	for attempt := 0; attempt < 1000; attempt++ {
		port := cl.cluster.PortFor(key)
		fd := cl.dial(tk, port)
		if fd < 0 {
			cl.Metrics.Errors++
			tk.Sleep(5 * time.Millisecond)
			continue
		}
		reply := cl.roundTrip(tk, fd, cmd)
		if reply == "" {
			// Connection died (node restarted): reconnect and retry.
			cl.kernel.Invoke(tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
			delete(cl.conns, port)
			cl.Metrics.Errors++
			tk.Sleep(5 * time.Millisecond)
			continue
		}
		cl.Metrics.Ops++
		return reply
	}
	return ""
}

// Step performs one workload operation: 70% GET / 30% SET over a small
// key space, tracking lost updates.
func (cl *Client) Step(tk *sim.Task, keys int) {
	key := fmt.Sprintf("rk-%04d", cl.rng.Intn(keys))
	if cl.rng.Intn(100) < 30 {
		val := fmt.Sprintf("v%06d", cl.rng.Intn(1_000_000))
		if reply := cl.Do(tk, key, "SET "+key+" "+val); strings.HasPrefix(reply, "+OK") {
			cl.written[key] = val
		}
		return
	}
	reply := cl.Do(tk, key, "GET "+key)
	if _, wrote := cl.written[key]; wrote && strings.HasPrefix(reply, "$-1") {
		cl.Metrics.LostKeys++
	}
}

// Close shuts all connections.
func (cl *Client) Close(tk *sim.Task) {
	for port, fd := range cl.conns {
		cl.kernel.Invoke(tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
		delete(cl.conns, port)
	}
}

// ComparisonResult is one strategy's outcome.
type ComparisonResult struct {
	Strategy   Strategy
	Ops        int64
	Errors     int64
	LostKeys   int64
	MaxLatency time.Duration
	Versions   []string // final per-node versions
}

// Compare upgrades a cluster under live load with each strategy and
// reports what clients experienced — the quantified version of the
// paper's §1.1/§2.2 argument.
func Compare(nodes, preload int, from, to string) ([]ComparisonResult, error) {
	var out []ComparisonResult
	for _, strategy := range []Strategy{StrategyStateless, StrategyCheckpoint, StrategyMVEDSUA} {
		r, err := compareOne(strategy, nodes, preload, from, to)
		if err != nil {
			return out, fmt.Errorf("%v: %w", strategy, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func compareOne(strategy Strategy, nodes, preload int, from, to string) (ComparisonResult, error) {
	s := sim.New()
	k := vos.NewKernel(s)
	cluster := NewCluster(k, nodes, from, strategy)
	for _, node := range cluster.Nodes() {
		nodeApp(node).Preload(preload)
	}
	res := ComparisonResult{Strategy: strategy}
	var upgradeErr error
	done := false

	client := NewClient(cluster, 42)
	s.Go("client", func(tk *sim.Task) {
		// Warm the written-set, then keep load on during the upgrade.
		for !done {
			client.Step(tk, 200)
			tk.Sleep(2 * time.Millisecond)
		}
		client.Close(tk)
	})
	s.Go("operator", func(tk *sim.Task) {
		tk.Sleep(200 * time.Millisecond)
		client.Metrics = ClientMetrics{} // measure from the upgrade on
		upgradeErr = cluster.UpgradeAll(tk, from, to, 50*time.Millisecond)
		tk.Sleep(300 * time.Millisecond) // post-upgrade observation
		done = true
		res.Ops = client.Metrics.Ops
		res.Errors = client.Metrics.Errors
		res.LostKeys = client.Metrics.LostKeys
		res.MaxLatency = client.Metrics.MaxLatency
		for _, node := range cluster.Nodes() {
			res.Versions = append(res.Versions, node.Version())
		}
		cluster.Teardown()
	})
	if err := s.Run(); err != nil {
		return res, err
	}
	return res, upgradeErr
}

// nodeApp returns the node's current kvstore instance.
func nodeApp(n *Node) *appAccess { return &appAccess{n} }

type appAccess struct{ n *Node }

// Preload fills the node's store directly.
func (a *appAccess) Preload(n int) { a.n.app.Preload(n) }

// FormatComparison renders the strategy comparison.
func FormatComparison(results []ComparisonResult) string {
	var b strings.Builder
	b.WriteString("Rolling upgrade vs MVEDSUA (stateful cluster under live load)\n")
	b.WriteString("  strategy                       ops   errors  lost-keys  max-latency\n")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-28s %6d   %6d     %6d   %8.0f ms\n",
			r.Strategy, r.Ops, r.Errors, r.LostKeys,
			float64(r.MaxLatency)/float64(time.Millisecond))
	}
	b.WriteString("  (the paper's §1.1/§2.2 argument, quantified: restarts drop state\n")
	b.WriteString("   or pause for checkpoint restore; MVEDSUA does neither)\n")
	return b.String()
}
