package sim

import (
	"testing"
	"time"
)

// Scheduler hot-path microbenchmarks (`make bench-sched`). These pin
// the cost of a dispatch, an enqueue+dispatch round trip, and a timer
// fire, so shard-coordination overhead added on top of the core
// scheduler is measurable before and after a change.

// BenchmarkDispatchYield measures the task→scheduler→task handoff: two
// tasks alternating via Yield, two dispatches per iteration.
func BenchmarkDispatchYield(b *testing.B) {
	s := New()
	for i := 0; i < 2; i++ {
		s.Go("yielder", func(tk *Task) {
			for n := 0; n < b.N; n++ {
				tk.Yield()
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEnqueueDispatch measures a single task re-enqueueing itself:
// one enqueue and one dispatch per iteration, no contention.
func BenchmarkEnqueueDispatch(b *testing.B) {
	s := New()
	s.Go("solo", func(tk *Task) {
		for n := 0; n < b.N; n++ {
			tk.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerFire measures the timer heap: push on Sleep, pop on
// fire, one of each per iteration.
func BenchmarkTimerFire(b *testing.B) {
	s := New()
	s.Go("sleeper", func(tk *Task) {
		for n := 0; n < b.N; n++ {
			tk.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerFireContended measures the heap with 64 interleaved
// sleepers, the shape of a populated shard.
func BenchmarkTimerFireContended(b *testing.B) {
	s := New()
	const tasks = 64
	for i := 0; i < tasks; i++ {
		s.Go("sleeper", func(tk *Task) {
			for n := 0; n < b.N/tasks; n++ {
				tk.Sleep(time.Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardedEpoch measures pure epoch-coordination overhead: two
// shards, one task each sleeping through every quantum, so each
// iteration is one barrier with minimal shard-local work.
func BenchmarkShardedEpoch(b *testing.B) {
	ss := NewSharded(2, time.Millisecond)
	for i := 0; i < 2; i++ {
		ss.Go(i, "ticker", func(tk *Task) {
			for n := 0; n < b.N; n++ {
				tk.Sleep(time.Millisecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := ss.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardedCrossSend measures the cross-shard path: one message
// sequenced through the barrier per iteration, ping-ponging between two
// shards.
func BenchmarkShardedCrossSend(b *testing.B) {
	ss := NewSharded(2, time.Millisecond)
	var bounce func(tk *Task, n int)
	bounce = func(tk *Task, n int) {
		if n >= b.N {
			return
		}
		to := 1 - tk.Scheduler().ShardID()
		ss.Send(tk, to, "ball", func(rk *Task) { bounce(rk, n+1) })
	}
	ss.Go(0, "serve", func(tk *Task) { bounce(tk, 0) })
	b.ReportAllocs()
	b.ResetTimer()
	if err := ss.Run(); err != nil {
		b.Fatal(err)
	}
}
