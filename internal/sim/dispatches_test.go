package sim

import "testing"

// TestDispatchesCountsContextSwitches pins the Dispatches counter the
// perf experiment reports: every time the scheduler hands the CPU to a
// task — first run, post-yield, or post-wake — counts as one context
// switch, and the counter is monotone across the run.
func TestDispatchesCountsContextSwitches(t *testing.T) {
	s := New()
	if s.Dispatches() != 0 {
		t.Fatalf("Dispatches before Run = %d, want 0", s.Dispatches())
	}
	var q WaitQueue
	s.Go("sleeper", func(tk *Task) {
		tk.Block(&q) // parked, resumed once by the waker
	})
	s.Go("yielder", func(tk *Task) {
		tk.Yield()
		tk.Yield()
	})
	s.Go("waker", func(tk *Task) {
		q.WakeAll(s)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// sleeper: initial + post-wake = 2; yielder: initial + 2 yields = 3;
	// waker: initial = 1.
	if got := s.Dispatches(); got != 6 {
		t.Errorf("Dispatches = %d, want 6", got)
	}
}
