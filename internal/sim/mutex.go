package sim

// Mutex is a cooperative mutual-exclusion lock for sim tasks. It exists so
// applications can reproduce the paper's timing-error scenario (§2.4): a
// dynamic update attempted while one thread holds a lock that another
// thread is waiting for.
//
// The zero value is an unlocked mutex.
type Mutex struct {
	owner   *Task
	waiters WaitQueue
}

// Lock acquires the mutex, blocking the calling task until it is available.
func (m *Mutex) Lock(t *Task) {
	for m.owner != nil {
		t.Block(&m.waiters)
	}
	m.owner = t
}

// TryLock acquires the mutex if it is free, reporting whether it did.
func (m *Mutex) TryLock(t *Task) bool {
	if m.owner != nil {
		return false
	}
	m.owner = t
	return true
}

// Unlock releases the mutex and wakes one waiter. It panics if the calling
// task does not hold the lock.
func (m *Mutex) Unlock(t *Task) {
	if m.owner != t {
		panic("sim: unlock of mutex not held by " + t.Name())
	}
	m.owner = nil
	m.waiters.WakeOne(t.Scheduler())
}

// Holder returns the task currently holding the lock, or nil.
func (m *Mutex) Holder() *Task { return m.owner }

// Cond is a condition variable for sim tasks.
type Cond struct {
	q WaitQueue
}

// Wait parks the task until Signal or Broadcast. As with sync.Cond, callers
// must re-check their condition in a loop.
func (c *Cond) Wait(t *Task) { t.Block(&c.q) }

// Signal wakes one waiting task.
func (c *Cond) Signal(s *Scheduler) { c.q.WakeOne(s) }

// Broadcast wakes all waiting tasks.
func (c *Cond) Broadcast(s *Scheduler) { c.q.WakeAll(s) }

// Waiters returns the number of tasks parked on the condition.
func (c *Cond) Waiters() int { return c.q.Len() }

// Queue exposes the underlying wait queue for use with Task.Block.
func (c *Cond) Queue() *WaitQueue { return &c.q }
