package sim

import "time"

// SliceProfiler receives exact virtual-time attribution from a
// Scheduler. Unlike a sampling profiler, every virtual nanosecond a
// task holds the CPU is delivered exactly once, split into segments at
// label-stack changes, so the segments of one scheduler tile its
// timeline: Σ segment widths + idle = makespan, with no sampling error.
//
// The interface is structural on purpose: internal/obs implements it
// without sim importing obs, preserving the layering (obs observes sim,
// never the other way around).
//
// Both methods are called in scheduler context (between dispatches, or
// from the running task itself at a label boundary) and must not block
// or touch the scheduler: a profiler is a pure observer, exactly like
// Scheduler.OnSlice.
type SliceProfiler interface {
	// ProfileSlice charges the half-open CPU interval [start, end) to
	// the task under the given label stack. labels is the task's live
	// stack — implementations must copy what they keep.
	ProfileSlice(task string, labels []string, start, end time.Duration)

	// ProfileWait charges the half-open off-CPU interval [start, end)
	// to the task: time it spent blocked (ring waits, lockstep drains)
	// or doing sleep-modeled parallel work (follower replay, parallel
	// state transformation). Off-CPU intervals overlap other tasks'
	// slices, so they form a separate accounting dimension from
	// ProfileSlice and are excluded from the sums-to-makespan
	// invariant.
	ProfileWait(task string, labels []string, wait string, start, end time.Duration)
}

// SetProfiler attaches (or, with nil, detaches) a slice profiler. Like
// OnSlice it is observation-only: attaching a profiler changes neither
// the clock nor any scheduling decision, so a profiled run replays the
// exact schedule of a bare one.
func (s *Scheduler) SetProfiler(p SliceProfiler) { s.profiler = p }

// Profiler returns the attached slice profiler, or nil.
func (s *Scheduler) Profiler() SliceProfiler { return s.profiler }

// flushSegment closes the open CPU segment of the currently running
// task at the present clock and starts the next one. Called by dispatch
// at slice end and by PushLabel/PopLabel at label boundaries, so each
// delivered segment carries the one label stack that was live for its
// whole width.
func (s *Scheduler) flushSegment(t *Task) {
	if s.clock > s.segStart {
		s.profiler.ProfileSlice(t.name, t.labels, s.segStart, s.clock)
	}
	s.segStart = s.clock
}

// PushLabel pushes a profiling label onto the task's attribution stack.
// With no profiler attached this is a no-op (a few ns), so chokepoints
// may call it unconditionally on hot paths. Pushing from outside the
// running task is allowed (the new stack takes effect at the task's
// next segment); pushing from inside first flushes the open segment so
// the preceding virtual time keeps the old stack.
func (t *Task) PushLabel(label string) {
	if t.s.profiler == nil {
		return
	}
	if t.s.current == t {
		t.s.flushSegment(t)
	}
	t.labels = append(t.labels, label)
}

// PopLabel pops the most recent profiling label. Safe in deferred
// cleanup paths: it never re-raises the killed sentinel (unlike
// Yield/Advance) and popping an empty stack is a no-op.
func (t *Task) PopLabel() {
	if t.s.profiler == nil {
		return
	}
	if t.s.current == t {
		t.s.flushSegment(t)
	}
	if n := len(t.labels); n > 0 {
		t.labels = t.labels[:n-1]
	}
}

// ChargeWait attributes the off-CPU interval [start, now) to the task
// under its current label stack plus the wait label. Chokepoints call
// it after a Block or Sleep episode, passing the virtual time observed
// before parking. A no-op without a profiler.
func (t *Task) ChargeWait(wait string, start time.Duration) {
	if t.s.profiler == nil {
		return
	}
	if end := t.s.clock; end > start {
		t.s.profiler.ProfileWait(t.name, t.labels, wait, start, end)
	}
}
