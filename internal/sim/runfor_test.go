package sim

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// The sharded epoch loop leans on RunFor's horizon semantics; these
// tests pin the edges it depends on.

// A timer that fires exactly at the horizon makes its task runnable but
// does not execute it: RunFor stops with the clock at the horizon and
// the task runs first thing on the next Run.
func TestRunForTimerExactlyAtHorizon(t *testing.T) {
	s := New()
	ran := false
	s.Go("sleeper", func(tk *Task) {
		tk.Sleep(10 * time.Millisecond)
		ran = true
	})
	if err := s.RunFor(10 * time.Millisecond); err != nil {
		t.Fatalf("runfor: %v", err)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock %v, want exactly 10ms", s.Now())
	}
	if ran {
		t.Fatal("task body ran inside RunFor despite the horizon")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !ran {
		t.Fatal("task never resumed after the horizon")
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock %v after resume, want 10ms (no extra time passes)", s.Now())
	}
}

// A timer one tick past the horizon does not fire: the clock still
// lands exactly on the horizon.
func TestRunForTimerJustPastHorizon(t *testing.T) {
	s := New()
	ran := false
	s.Go("sleeper", func(tk *Task) {
		tk.Sleep(10*time.Millisecond + time.Nanosecond)
		ran = true
	})
	if err := s.RunFor(10 * time.Millisecond); err != nil {
		t.Fatalf("runfor: %v", err)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock %v, want exactly 10ms", s.Now())
	}
	if ran {
		t.Fatal("timer past the horizon fired early")
	}
}

// A zero-duration RunFor is a no-op even with runnable tasks queued:
// nothing executes, the clock does not move, and no deadlock is
// reported.
func TestRunForZeroDuration(t *testing.T) {
	s := New()
	ran := false
	s.Go("ready", func(tk *Task) { ran = true })
	if err := s.RunFor(0); err != nil {
		t.Fatalf("runfor(0): %v", err)
	}
	if ran {
		t.Fatal("task ran during a zero-duration RunFor")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v during a zero-duration RunFor", s.Now())
	}
	if d := s.Dispatches(); d != 0 {
		t.Fatalf("%d dispatches during a zero-duration RunFor", d)
	}
}

// A task parked on a WaitQueue with a timeout still pending is not a
// deadlock: the timer keeps the run alive and wakes it.
func TestRunForParkedButTimeredIsNotDeadlock(t *testing.T) {
	s := New()
	var q WaitQueue
	wokenByTimeout := false
	s.Go("parked", func(tk *Task) {
		wokenByTimeout = !tk.BlockTimeout(&q, 5*time.Millisecond)
	})
	if err := s.RunFor(20 * time.Millisecond); err != nil {
		t.Fatalf("runfor reported %v with a timeout pending", err)
	}
	if !wokenByTimeout {
		t.Fatal("BlockTimeout did not report a timeout")
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock %v, want the full 20ms horizon", s.Now())
	}
}

// Once no timer is pending, a task parked without a timeout is a
// deadlock — even mid-horizon.
func TestRunForDeadlockAfterTimersDrain(t *testing.T) {
	s := New()
	var q WaitQueue
	s.Go("stuck", func(tk *Task) { tk.Block(&q) })
	s.Go("transient", func(tk *Task) { tk.Sleep(2 * time.Millisecond) })
	err := s.RunFor(10 * time.Millisecond)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if !reflect.DeepEqual(dl.Blocked, []string{"stuck"}) {
		t.Fatalf("blocked = %v, want [stuck]", dl.Blocked)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("clock %v at deadlock, want 2ms (the last real event)", s.Now())
	}
}

// Splitting a run into RunFor windows is invisible to the tasks: the
// scheduling trace equals one uninterrupted Run.
func TestRunForSplitMatchesRun(t *testing.T) {
	build := func(s *Scheduler) {
		for i := 0; i < 3; i++ {
			i := i
			s.Go("w", func(tk *Task) {
				for n := 0; n < 8; n++ {
					tk.Sleep(time.Duration(i+1) * 700 * time.Microsecond)
					tk.Advance(100 * time.Microsecond)
				}
			})
		}
	}
	whole := New()
	whole.SetTracing(true)
	build(whole)
	if err := whole.Run(); err != nil {
		t.Fatalf("whole: %v", err)
	}

	split := New()
	split.SetTracing(true)
	build(split)
	for i := 0; i < 10; i++ {
		if err := split.RunFor(3 * time.Millisecond); err != nil {
			t.Fatalf("split window %d: %v", i, err)
		}
	}
	if err := split.Run(); err != nil {
		t.Fatalf("split tail: %v", err)
	}
	if !reflect.DeepEqual(whole.Trace(), split.Trace()) {
		t.Fatalf("split trace diverged:\nwhole %v\nsplit %v", whole.Trace(), split.Trace())
	}
}
