// Package sim provides a deterministic cooperative scheduler with virtual
// time. It is the execution substrate for the whole MVEDSUA reproduction:
// server threads, MVE followers, benchmark clients, and the update
// controller all run as sim tasks inside one Scheduler.
//
// Exactly one task executes at a time; a task runs until it yields, blocks,
// sleeps, or exits. The virtual clock advances only when a running task
// charges work with Advance, or when every task is blocked and the scheduler
// jumps to the earliest pending timer. Runs are therefore bit-for-bit
// reproducible, which the divergence-detection tests rely on.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// State describes where a task is in its lifecycle.
type State int

// Task lifecycle states.
const (
	StateNew      State = iota // created, not yet started
	StateRunnable              // on the run queue
	StateRunning               // currently executing
	StateBlocked               // parked on a WaitQueue
	StateSleeping              // parked on the timer heap
	StateDone                  // exited
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateSleeping:
		return "sleeping"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DeadlockError is returned by Run when live tasks remain but none can make
// progress: every task is blocked on a WaitQueue and no timers are pending.
type DeadlockError struct {
	// Blocked lists the names of the tasks that were stuck.
	Blocked []string
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d tasks blocked: %v", len(e.Blocked), e.Blocked)
}

// CrashInfo records a task that exited by panicking. The scheduler converts
// application panics into CrashInfo values instead of crashing the host
// process; MVEDSUA's fault-tolerance experiments observe crashes this way.
type CrashInfo struct {
	Task  string      // task name
	Value interface{} // the recovered panic value
}

// Scheduler owns the virtual clock and all tasks.
type Scheduler struct {
	clock   time.Duration
	nextID  int
	nextSeq int64
	shard   int // index within a ShardedScheduler; 0 for standalone use

	runq   []*Task
	timers timerHeap
	live   int // tasks not yet done

	parked  chan struct{} // task -> scheduler handoff
	current *Task

	// OnCrash, if non-nil, is invoked (in scheduler context) whenever a
	// task exits via panic. If nil, the panic is re-raised.
	OnCrash func(CrashInfo)

	// OnSlice, if non-nil, observes each dispatch's run slice after the
	// task parks again: the task's name plus the virtual interval it held
	// the CPU. It is a pure observer — called in scheduler context, after
	// the slice ended — so it cannot perturb scheduling or the clock.
	OnSlice func(task string, start, end time.Duration)

	// profiler, if non-nil, receives exact per-segment attribution of
	// every slice (see SetProfiler). segStart tracks the open segment's
	// left edge while a task runs; label pushes flush and restart it.
	profiler SliceProfiler
	segStart time.Duration

	crashes      []CrashInfo
	tracing      bool
	trace        []string
	traceCap     int
	traceStart   int   // oldest slot once the trace wrapped
	traceDropped int64 // trace lines evicted from the circular tail
	blocked      map[*Task]struct{}
	dispatches   int64
}

// DefaultTraceCap bounds the scheduling trace unless SetTraceCapacity
// chose another cap: the newest window survives and evictions are
// counted, mirroring the recorder's hot ring and the mve event log.
const DefaultTraceCap = 1 << 16

// New returns an empty scheduler with the clock at zero.
func New() *Scheduler {
	return &Scheduler{
		parked:  make(chan struct{}),
		blocked: make(map[*Task]struct{}),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.clock }

// ShardID returns the scheduler's index within its ShardedScheduler, or
// 0 for a standalone scheduler.
func (s *Scheduler) ShardID() int { return s.shard }

// Crashes returns the crashes observed so far, in order.
func (s *Scheduler) Crashes() []CrashInfo { return s.crashes }

// Dispatches returns the number of context switches performed so far: each
// time the scheduler hands the CPU to a task counts as one. Tasks that
// block, sleep, or yield and later resume are dispatched again, so the
// count measures scheduling churn, not task count. It never advances the
// virtual clock and is safe to read at any point.
func (s *Scheduler) Dispatches() int64 { return s.dispatches }

// SetTracing enables or disables recording of a scheduling trace, useful in
// tests that assert deterministic interleavings. The trace is bounded (the
// newest DefaultTraceCap entries unless SetTraceCapacity was called); use
// TraceDropped to detect truncation.
func (s *Scheduler) SetTracing(on bool) {
	s.tracing = on
	if s.traceCap <= 0 {
		s.traceCap = DefaultTraceCap
	}
}

// SetTraceCapacity bounds the scheduling trace to the newest n entries
// (n <= 0 restores the default). Changing the capacity clears any
// already-recorded trace so the circular tail restarts cleanly.
func (s *Scheduler) SetTraceCapacity(n int) {
	if n <= 0 {
		n = DefaultTraceCap
	}
	s.traceCap = n
	s.trace = nil
	s.traceStart = 0
	s.traceDropped = 0
}

// Trace returns the recorded scheduling trace, oldest surviving entry
// first.
func (s *Scheduler) Trace() []string {
	if len(s.trace) == 0 {
		return nil
	}
	out := make([]string, 0, len(s.trace))
	for i := 0; i < len(s.trace); i++ {
		out = append(out, s.trace[(s.traceStart+i)%len(s.trace)])
	}
	return out
}

// TraceDropped returns how many trace entries the bounded store evicted.
func (s *Scheduler) TraceDropped() int64 { return s.traceDropped }

// Go creates and starts a new task running fn. The task is appended to the
// run queue; it first executes when the scheduler reaches it. Go may be
// called before Run, or from inside a running task.
func (s *Scheduler) Go(name string, fn func(*Task)) *Task {
	s.nextID++
	t := &Task{
		id:     s.nextID,
		name:   name,
		s:      s,
		resume: make(chan struct{}),
		state:  StateNew,
	}
	s.live++
	go func() {
		<-t.resume
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killedPanic); !isKill {
					t.crashed = true
					t.crashVal = r
				}
			}
			t.state = StateDone
			s.live--
			// Wake any tasks joined on this one.
			t.joiners.wakeAll(s)
			s.parked <- struct{}{}
		}()
		t.state = StateRunning
		fn(t)
	}()
	s.enqueue(t)
	return t
}

func (s *Scheduler) enqueue(t *Task) {
	t.state = StateRunnable
	s.runq = append(s.runq, t)
}

// Run executes tasks until none remain, returning nil, or until no task can
// make progress, returning a *DeadlockError.
func (s *Scheduler) Run() error {
	for s.live > 0 {
		if len(s.runq) == 0 {
			if s.timers.Len() == 0 {
				return s.deadlock()
			}
			s.fireNextTimer()
			continue
		}
		t := s.runq[0]
		s.runq = s.runq[1:]
		if t.state == StateDone {
			continue
		}
		s.dispatch(t)
	}
	return nil
}

// RunFor executes tasks until the virtual clock passes deadline or no tasks
// remain. Tasks still live at the deadline stay parked; Run or RunFor can be
// called again to continue. It returns a *DeadlockError on deadlock.
func (s *Scheduler) RunFor(d time.Duration) error {
	deadline := s.clock + d
	for s.live > 0 && s.clock < deadline {
		if len(s.runq) == 0 {
			if s.timers.Len() == 0 {
				return s.deadlock()
			}
			if s.timers[0].when > deadline {
				s.clock = deadline
				return nil
			}
			s.fireNextTimer()
			continue
		}
		t := s.runq[0]
		s.runq = s.runq[1:]
		if t.state == StateDone {
			continue
		}
		s.dispatch(t)
	}
	if s.clock < deadline && s.live == 0 {
		s.clock = deadline
	}
	return nil
}

func (s *Scheduler) deadlock() error {
	return &DeadlockError{Blocked: s.blockedNames()}
}

// blockedNames returns the names of the tasks parked on wait queues,
// sorted so the report is deterministic.
func (s *Scheduler) blockedNames() []string {
	var names []string
	for t := range s.blocked { // maporder: ok — names are sorted below
		names = append(names, t.name)
	}
	sort.Strings(names)
	return names
}

// hasRunnable reports whether the run queue holds at least one entry.
// Done tasks still queued count (dispatch skips them), so a true result
// means at most that the next run step is cheap, never that it is
// missing — which is what the sharded epoch loop needs.
func (s *Scheduler) hasRunnable() bool { return len(s.runq) > 0 }

// nextTimer returns the earliest pending timer deadline. Stale timers
// (task killed or woken early) are included, so the returned time is a
// lower bound on the next real event.
func (s *Scheduler) nextTimer() (time.Duration, bool) {
	if s.timers.Len() == 0 {
		return 0, false
	}
	return s.timers[0].when, true
}

// liveTasks returns the number of tasks not yet done.
func (s *Scheduler) liveTasks() int { return s.live }

func (s *Scheduler) dispatch(t *Task) {
	s.dispatches++
	s.current = t
	t.state = StateRunning
	if s.tracing {
		line := fmt.Sprintf("%d:%s", s.clock/time.Microsecond, t.name)
		if len(s.trace) < s.traceCap {
			s.trace = append(s.trace, line)
		} else {
			s.trace[s.traceStart] = line
			s.traceStart = (s.traceStart + 1) % s.traceCap
			s.traceDropped++
		}
	}
	sliceStart := s.clock
	if s.profiler != nil {
		s.segStart = sliceStart
	}
	t.resume <- struct{}{}
	<-s.parked
	if s.profiler != nil {
		s.flushSegment(t)
	}
	s.current = nil
	if s.OnSlice != nil {
		s.OnSlice(t.name, sliceStart, s.clock)
	}
	if t.state == StateDone && t.crashed {
		info := CrashInfo{Task: t.name, Value: t.crashVal}
		s.crashes = append(s.crashes, info)
		if s.OnCrash != nil {
			s.OnCrash(info)
		} else {
			panic(t.crashVal)
		}
	}
}

// advanceTo moves the clock forward and fires all timers that are due.
func (s *Scheduler) advanceTo(when time.Duration) {
	if when > s.clock {
		s.clock = when
	}
	for s.timers.Len() > 0 && s.timers[0].when <= s.clock {
		tm := heap.Pop(&s.timers).(*timer)
		if tm.task.state == StateSleeping {
			s.enqueue(tm.task)
		}
	}
}

func (s *Scheduler) fireNextTimer() {
	// Discard stale timers (task killed or woken early) without advancing
	// the clock: a dead task's deadline must not distort the timeline.
	for s.timers.Len() > 0 && s.timers[0].task.state != StateSleeping {
		heap.Pop(&s.timers)
	}
	if s.timers.Len() == 0 {
		return
	}
	tm := heap.Pop(&s.timers).(*timer)
	if tm.when > s.clock {
		s.clock = tm.when
	}
	s.enqueue(tm.task)
	// Also release any other timers that share this instant so FIFO order
	// among equal deadlines is preserved by seq ordering in the heap.
	for s.timers.Len() > 0 && s.timers[0].when <= s.clock {
		next := heap.Pop(&s.timers).(*timer)
		if next.task.state == StateSleeping {
			s.enqueue(next.task)
		}
	}
}

type timer struct {
	when time.Duration
	seq  int64
	task *Task
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
