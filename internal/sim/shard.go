package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements the sharded parallel runtime: N independent
// Schedulers ("shards"), each with its own virtual clock and task set,
// executing on real OS threads in deterministic lockstep epochs.
//
// The model follows the deterministic-lockstep discipline of the
// multi-variant-execution literature (Volckaert et al., dMVX): work
// that never crosses a shard boundary runs in parallel with no
// synchronization at all, while every cross-shard interaction is forced
// through a single chokepoint — the epoch barrier — where pending
// messages from all shards are sequenced by a (virtual-time, shard-id,
// sequence) total order before delivery. Because that order depends
// only on virtual time and per-shard deterministic state, never on OS
// thread interleaving, a sharded run is bit-for-bit reproducible: the
// run-twice property tests diff merged traces and metrics across runs
// (including under the race detector) to pin this down.
//
// Epoch mechanics: all shards run concurrently for one quantum of
// virtual time (RunFor to a shared boundary), then rendezvous. At the
// barrier the coordinator — always a single goroutine — collects each
// shard's outbox, merges the messages into the total order, and
// delivers each as a fresh task on its target shard. A message sent in
// epoch E is therefore visible on the target no earlier than the E/E+1
// boundary: cross-shard latency is bounded by one quantum, which is the
// price of running the shards without locks in between. Pick the
// quantum accordingly — it is the cross-shard synchronization grain,
// not a performance tunable for shard-local work.
//
// Virtual clocks stay aligned at barriers: every shard's clock is
// advanced to the epoch boundary before the next epoch starts, so
// timestamps from different shards are comparable and the merged trace
// (MergedTrace) is a globally ordered timeline.

// DefaultQuantum is the epoch length used when NewSharded is given a
// non-positive quantum.
const DefaultQuantum = time.Millisecond

// ShardedScheduler coordinates N per-shard Schedulers running in
// deterministic lockstep epochs on parallel OS threads.
type ShardedScheduler struct {
	quantum  time.Duration
	shards   []*shardState
	boundary time.Duration // virtual time all shards have reached
	inflight []crossMsg    // merged messages awaiting delivery
	postSeq  int64
	running  bool

	flowLog bool        // set by SetFlowLog; records cross-shard deliveries
	flows   []CrossFlow // delivery-ordered flow records
}

// CrossFlow records one cross-shard delivery for timeline export: the
// message's identity in the barrier merge order plus the virtual send
// and delivery instants. Because deliver() sequences messages by
// (virtual send time, source shard, sequence) — an OS-independent total
// order — the Seq values and the whole flow list are deterministic.
type CrossFlow struct {
	Seq       int64         // position in the global delivery order (1-based)
	From      int           // source shard; -1 for Post
	To        int           // target shard
	Name      string        // the delivered task's name
	Sent      time.Duration // virtual send time on the source shard
	Delivered time.Duration // boundary at which the target received it
}

// SetFlowLog enables recording of cross-shard deliveries (see Flows).
// Pure observation: it changes no scheduling decision and costs one
// append per delivery, only when enabled.
func (ss *ShardedScheduler) SetFlowLog(on bool) { ss.flowLog = on }

// Flows returns the recorded cross-shard deliveries in delivery order.
func (ss *ShardedScheduler) Flows() []CrossFlow {
	return append([]CrossFlow(nil), ss.flows...)
}

// shardState is the coordinator's bookkeeping for one shard.
type shardState struct {
	id       int
	sched    *Scheduler
	outbox   []crossMsg // appended by tasks during an epoch, drained at the barrier
	sendSeq  int64
	stalled  bool // last epoch ended with blocked tasks and no timers
	runErr   error
	runPanic interface{}
}

// crossMsg is one cross-shard interaction: a closure to run as a fresh
// task on the target shard, stamped with its deterministic position in
// the global order.
type crossMsg struct {
	when time.Duration // virtual send time on the source shard
	from int           // source shard id; -1 for Post
	seq  int64         // per-source sequence number
	to   int
	name string
	fn   func(*Task)
}

// NewSharded returns a ShardedScheduler with n shards (n < 1 is treated
// as 1) and the given epoch quantum (<= 0 selects DefaultQuantum).
// Shard 0 of a 1-shard runtime behaves exactly like a standalone
// Scheduler driven through RunFor — the single-shard path is the N=1
// special case, not a separate code path.
func NewSharded(n int, quantum time.Duration) *ShardedScheduler {
	if n < 1 {
		n = 1
	}
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	ss := &ShardedScheduler{quantum: quantum}
	for i := 0; i < n; i++ {
		sched := New()
		sched.shard = i
		ss.shards = append(ss.shards, &shardState{id: i, sched: sched})
	}
	return ss
}

// Shards returns the number of shards.
func (ss *ShardedScheduler) Shards() int { return len(ss.shards) }

// Quantum returns the epoch length.
func (ss *ShardedScheduler) Quantum() time.Duration { return ss.quantum }

// Shard returns shard i's Scheduler. Building a workload on a shard is
// exactly building it on a Scheduler; tasks never observe the sharding
// unless they use Send.
func (ss *ShardedScheduler) Shard(i int) *Scheduler { return ss.shards[i].sched }

// Go starts fn as a task on shard i.
func (ss *ShardedScheduler) Go(i int, name string, fn func(*Task)) *Task {
	return ss.shards[i].sched.Go(name, fn)
}

// Now returns the virtual time every shard is guaranteed to have
// reached: the last epoch boundary. Individual shard clocks may be
// ahead (a task can Advance past the boundary) but never behind.
func (ss *ShardedScheduler) Now() time.Duration { return ss.boundary }

// Dispatches returns the total context switches across all shards.
func (ss *ShardedScheduler) Dispatches() int64 {
	var n int64
	for _, sh := range ss.shards {
		n += sh.sched.Dispatches()
	}
	return n
}

// SetTracing enables or disables the scheduling trace on every shard.
func (ss *ShardedScheduler) SetTracing(on bool) {
	for _, sh := range ss.shards {
		sh.sched.SetTracing(on)
	}
}

// SetTraceCapacity bounds every shard's scheduling trace.
func (ss *ShardedScheduler) SetTraceCapacity(n int) {
	for _, sh := range ss.shards {
		sh.sched.SetTraceCapacity(n)
	}
}

// Send schedules fn to run as a fresh task named name on shard `to`.
// It must be called from a task (tk) running on one of this runtime's
// shards. Delivery is deterministic but not immediate: the message is
// sequenced at the next epoch barrier by (virtual send time, source
// shard, send sequence), so fn starts on the target shard at most one
// quantum of virtual time after the send. This is the only sanctioned
// way for work on one shard to affect another; sharing memory across
// shards would reintroduce the OS-interleaving nondeterminism the
// barrier exists to exclude.
func (ss *ShardedScheduler) Send(tk *Task, to int, name string, fn func(*Task)) {
	if to < 0 || to >= len(ss.shards) {
		panic(fmt.Sprintf("sim: Send to shard %d of %d", to, len(ss.shards)))
	}
	from := tk.s.shard
	sh := ss.shards[from]
	if sh.sched != tk.s {
		panic("sim: Send from a task outside this ShardedScheduler")
	}
	tk.checkCurrent("Send")
	sh.sendSeq++
	sh.outbox = append(sh.outbox, crossMsg{
		when: tk.s.clock, from: from, seq: sh.sendSeq, to: to, name: name, fn: fn,
	})
}

// Post injects a message from outside the runtime (setup code, test
// drivers): fn runs as a fresh task on shard `to` at the first epoch
// boundary at or after `at`. It must not be called while the runtime is
// running an epoch.
func (ss *ShardedScheduler) Post(to int, at time.Duration, name string, fn func(*Task)) {
	if to < 0 || to >= len(ss.shards) {
		panic(fmt.Sprintf("sim: Post to shard %d of %d", to, len(ss.shards)))
	}
	if ss.running {
		panic("sim: Post while the sharded runtime is running")
	}
	ss.postSeq++
	ss.inflight = append(ss.inflight, crossMsg{
		when: at, from: -1, seq: ss.postSeq, to: to, name: name, fn: fn,
	})
}

// Run executes epochs until every shard has drained (no live tasks) and
// no cross-shard messages are pending. It returns a *DeadlockError —
// with shard-qualified task names — when live tasks remain but no shard
// can make progress and no message can ever arrive.
func (ss *ShardedScheduler) Run() error {
	for {
		advanced, done, err := ss.epoch(0)
		if err != nil || done {
			return err
		}
		_ = advanced
	}
}

// RunFor executes epochs until every shard's clock has reached the
// current boundary plus d (or until all shards drain). Like
// Scheduler.RunFor, tasks still live at the horizon stay parked and a
// later Run/RunFor continues them.
func (ss *ShardedScheduler) RunFor(d time.Duration) error {
	target := ss.boundary + d
	for ss.boundary < target {
		_, done, err := ss.epoch(target)
		if err != nil {
			return err
		}
		if done {
			// Drained early: account the rest of the horizon so a
			// subsequent RunFor continues from where Scheduler.RunFor
			// would have.
			ss.alignClocks(target)
			ss.boundary = target
			return nil
		}
	}
	return nil
}

// epoch runs one lockstep step: deliver pending messages, pick the next
// boundary, run all shards to it in parallel, then collect outboxes.
// target caps the boundary when non-zero. It reports whether the
// runtime advanced and whether it is fully drained.
func (ss *ShardedScheduler) epoch(target time.Duration) (advanced, done bool, err error) {
	ss.deliver()

	anyLive, anyRunnable := false, false
	var earliest time.Duration // next timer or held-back message anywhere
	haveEvent := false
	note := func(when time.Duration) {
		if !haveEvent || when < earliest {
			earliest = when
		}
		haveEvent = true
	}
	for _, sh := range ss.shards {
		if sh.sched.liveTasks() > 0 {
			anyLive = true
		}
		if sh.sched.hasRunnable() {
			anyRunnable = true
		}
		if when, ok := sh.sched.nextTimer(); ok {
			note(when)
		}
	}
	for _, m := range ss.inflight {
		// deliver() released everything due, so these are all future.
		note(m.when)
	}
	if !anyLive && len(ss.inflight) == 0 {
		return false, true, nil
	}
	if !anyRunnable && !haveEvent {
		// Every live task is parked on a wait queue, no timer can fire,
		// and nothing is in flight: no shard can ever make progress.
		return false, false, ss.mergedDeadlock()
	}

	next := ss.boundary + ss.quantum
	if !anyRunnable && haveEvent && earliest > next {
		// Nothing can run before the earliest timer or held-back message
		// anywhere; jump the whole fleet straight to it instead of
		// stepping empty epochs.
		next = earliest
	}
	if target > 0 && next > target {
		next = target
	}

	ss.runEpoch(next)

	for _, sh := range ss.shards {
		if sh.runPanic != nil {
			p := sh.runPanic
			sh.runPanic = nil
			panic(p)
		}
		if sh.runErr != nil {
			if _, ok := sh.runErr.(*DeadlockError); ok {
				// The shard is blocked with no timers — possibly waiting
				// on a cross-shard message. Global deadlock is decided
				// above, once no shard can move and nothing is in flight.
				sh.stalled = true
				sh.runErr = nil
			} else {
				err := sh.runErr
				sh.runErr = nil
				return true, false, err
			}
		} else {
			sh.stalled = false
		}
		ss.inflight = append(ss.inflight, sh.outbox...)
		sh.outbox = nil
	}
	ss.alignClocks(next)
	ss.boundary = next
	return true, false, nil
}

// runEpoch runs every shard with pending work to the boundary, one OS
// thread per shard. Shards share no state during the epoch; the only
// cross-goroutine edges are the fork/join around the barrier, so the
// epoch body is race-free by construction (and the property tests run
// under -race to keep it that way).
func (ss *ShardedScheduler) runEpoch(next time.Duration) {
	ss.running = true
	var wg sync.WaitGroup
	for _, sh := range ss.shards {
		d := next - sh.sched.Now()
		if d <= 0 {
			continue // overshot the boundary in an earlier epoch; let it catch up
		}
		wg.Add(1)
		go func(sh *shardState, d time.Duration) {
			defer wg.Done()
			defer func() {
				// A crash with no OnCrash handler panics out of RunFor;
				// capture it so the coordinator can re-raise it on the
				// caller's goroutine like a standalone Scheduler would.
				if r := recover(); r != nil {
					sh.runPanic = r
				}
			}()
			sh.runErr = sh.sched.RunFor(d)
		}(sh, d)
	}
	wg.Wait()
	ss.running = false
}

// alignClocks advances every lagging shard clock to the boundary so
// cross-shard timestamps stay comparable. Only shards that ended the
// epoch stalled (deadlocked locally) can lag, and those have no timers,
// so this moves clocks without scheduling anything.
func (ss *ShardedScheduler) alignClocks(next time.Duration) {
	for _, sh := range ss.shards {
		if sh.sched.Now() < next {
			sh.sched.advanceTo(next)
		}
	}
}

// deliver hands every pending cross-shard message to its target shard
// in the global (virtual-time, source-shard, sequence) order. Messages
// become fresh tasks appended to the target's run queue, so they run at
// the top of the next epoch in exactly this order.
func (ss *ShardedScheduler) deliver() {
	if len(ss.inflight) == 0 {
		return
	}
	// Hold back messages scheduled past the boundary (Post with a future
	// `at`); they deliver once the fleet reaches that time.
	var due, later []crossMsg
	for _, m := range ss.inflight {
		if m.when <= ss.boundary {
			due = append(due, m)
		} else {
			later = append(later, m)
		}
	}
	ss.inflight = later
	sort.SliceStable(due, func(i, j int) bool {
		a, b := due[i], due[j]
		if a.when != b.when {
			return a.when < b.when
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.seq < b.seq
	})
	for _, m := range due {
		fn := m.fn
		if ss.flowLog {
			ss.flows = append(ss.flows, CrossFlow{
				Seq: int64(len(ss.flows) + 1), From: m.from, To: m.to,
				Name: m.name, Sent: m.when, Delivered: ss.boundary,
			})
		}
		ss.shards[m.to].sched.Go(m.name, fn)
		ss.shards[m.to].stalled = false
	}
}

// pendingMessages reports messages not yet delivered (including Post
// messages scheduled for a future boundary).
func (ss *ShardedScheduler) pendingMessages() int { return len(ss.inflight) }

// mergedDeadlock builds a DeadlockError covering every shard, with task
// names qualified as "s<shard>/<task>".
func (ss *ShardedScheduler) mergedDeadlock() error {
	var names []string
	for _, sh := range ss.shards {
		for _, n := range sh.sched.blockedNames() {
			names = append(names, fmt.Sprintf("s%d/%s", sh.id, n))
		}
	}
	return &DeadlockError{Blocked: names}
}

// MergedTrace merges the per-shard scheduling traces (SetTracing must
// be on) into one deterministic global timeline ordered by
// (virtual time, shard id, per-shard order). Entries are the shard's
// trace lines prefixed "s<shard>|". Because per-shard traces are
// deterministic and the merge key is OS-independent, two runs of the
// same sharded workload produce byte-identical merged traces — the
// run-twice property tests are built on this.
func (ss *ShardedScheduler) MergedTrace() []string {
	type entry struct {
		at    time.Duration
		shard int
		idx   int
		line  string
	}
	var all []entry
	for _, sh := range ss.shards {
		for i, line := range sh.sched.Trace() {
			at := time.Duration(0)
			if c := strings.IndexByte(line, ':'); c > 0 {
				if us, err := strconv.ParseInt(line[:c], 10, 64); err == nil {
					at = time.Duration(us) * time.Microsecond
				}
			}
			all = append(all, entry{at: at, shard: sh.id, idx: i, line: line})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.idx < b.idx
	})
	out := make([]string, 0, len(all))
	for _, e := range all {
		out = append(out, fmt.Sprintf("s%d|%s", e.shard, e.line))
	}
	return out
}
