package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// shardedRunEquality runs the same single-shard workload on a plain
// Scheduler and on a 1-shard ShardedScheduler: the N=1 path must be the
// same machine, so the scheduling traces match line for line.
func TestShardedSingleShardMatchesScheduler(t *testing.T) {
	workload := func(s *Scheduler) {
		for i := 0; i < 3; i++ {
			i := i
			s.Go(fmt.Sprintf("w%d", i), func(tk *Task) {
				for n := 0; n < 5; n++ {
					tk.Sleep(time.Duration(i+1) * 300 * time.Microsecond)
					tk.Advance(50 * time.Microsecond)
					tk.Yield()
				}
			})
		}
	}

	plain := New()
	plain.SetTracing(true)
	workload(plain)
	if err := plain.Run(); err != nil {
		t.Fatalf("plain run: %v", err)
	}

	ss := NewSharded(1, time.Millisecond)
	ss.SetTracing(true)
	workload(ss.Shard(0))
	if err := ss.Run(); err != nil {
		t.Fatalf("sharded run: %v", err)
	}

	if got, want := ss.Shard(0).Trace(), plain.Trace(); !reflect.DeepEqual(got, want) {
		t.Fatalf("1-shard trace diverged from plain scheduler:\n got %v\nwant %v", got, want)
	}
	if got, want := ss.Shard(0).Dispatches(), plain.Dispatches(); got != want {
		t.Fatalf("dispatches: sharded %d, plain %d", got, want)
	}
}

// Cross-shard sends are delivered at the next epoch boundary, in
// deterministic order, never earlier than they were sent and never more
// than one quantum later.
func TestShardedCrossSendDeliveryBounds(t *testing.T) {
	const quantum = time.Millisecond
	ss := NewSharded(2, quantum)
	type arrival struct {
		sent, arrived time.Duration
	}
	var arrivals []arrival // only shard 1 tasks append: no cross-shard sharing
	ss.Go(0, "sender", func(tk *Task) {
		for i := 0; i < 5; i++ {
			tk.Sleep(700 * time.Microsecond)
			sent := tk.Now()
			ss.Send(tk, 1, "msg", func(rk *Task) {
				arrivals = append(arrivals, arrival{sent: sent, arrived: rk.Now()})
			})
		}
	})
	// Keep shard 1 alive long enough to receive everything.
	ss.Go(1, "keepalive", func(tk *Task) { tk.Sleep(10 * time.Millisecond) })
	if err := ss.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(arrivals) != 5 {
		t.Fatalf("got %d arrivals, want 5", len(arrivals))
	}
	for i, a := range arrivals {
		if a.arrived < a.sent {
			t.Errorf("arrival %d: delivered at %v before send at %v", i, a.arrived, a.sent)
		}
		if a.arrived > a.sent+quantum {
			t.Errorf("arrival %d: delivered at %v, more than one quantum after send at %v", i, a.arrived, a.sent)
		}
		if i > 0 && a.sent < arrivals[i-1].sent {
			t.Errorf("arrival %d out of order", i)
		}
	}
}

// A cross-shard wakeup rescues a task that would otherwise deadlock:
// blocked-on-a-WaitQueue with no timers is only a deadlock when no
// message can ever arrive.
func TestShardedCrossSendWakesBlockedTask(t *testing.T) {
	ss := NewSharded(2, time.Millisecond)
	var q WaitQueue
	woken := false
	ss.Go(0, "waiter", func(tk *Task) {
		tk.Block(&q)
		woken = true
	})
	ss.Go(1, "waker", func(tk *Task) {
		tk.Sleep(3 * time.Millisecond)
		ss.Send(tk, 0, "wake", func(rk *Task) {
			q.WakeAll(rk.Scheduler())
		})
	})
	if err := ss.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !woken {
		t.Fatal("blocked task was never woken by the cross-shard message")
	}
}

// With no message in flight and no timers, blocked tasks across shards
// are a deadlock, reported with shard-qualified names.
func TestShardedDeadlockDetection(t *testing.T) {
	ss := NewSharded(2, time.Millisecond)
	var q WaitQueue
	ss.Go(0, "stuck", func(tk *Task) { tk.Block(&q) })
	ss.Go(1, "transient", func(tk *Task) { tk.Sleep(2 * time.Millisecond) })
	err := ss.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "s0/stuck" {
		t.Fatalf("blocked = %v, want [s0/stuck]", dl.Blocked)
	}
}

// Post injects work from outside the runtime; a message dated in the
// future holds the runtime open and fires at the first boundary at or
// after its timestamp.
func TestShardedPostFutureDelivery(t *testing.T) {
	ss := NewSharded(2, time.Millisecond)
	var at time.Duration
	ss.Post(1, 5*time.Millisecond, "late", func(tk *Task) { at = tk.Now() })
	if err := ss.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at < 5*time.Millisecond {
		t.Fatalf("posted task ran at %v, want >= 5ms", at)
	}
	if at > 6*time.Millisecond {
		t.Fatalf("posted task ran at %v, want within a quantum of 5ms", at)
	}
}

// RunFor stops at the horizon with tasks parked and a later Run
// continues them, matching Scheduler.RunFor semantics.
func TestShardedRunForResume(t *testing.T) {
	ss := NewSharded(2, time.Millisecond)
	ticks := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		ss.Go(i, "ticker", func(tk *Task) {
			for n := 0; n < 10; n++ {
				tk.Sleep(time.Millisecond)
				ticks[i]++ // shard-local: each element touched by one shard only
			}
		})
	}
	if err := ss.RunFor(4500 * time.Microsecond); err != nil {
		t.Fatalf("runfor: %v", err)
	}
	if ss.Now() != 4500*time.Microsecond {
		t.Fatalf("boundary %v, want 4.5ms", ss.Now())
	}
	if ticks[0] != 4 || ticks[1] != 4 {
		t.Fatalf("ticks at horizon = %v, want 4 each", ticks)
	}
	if err := ss.Run(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if ticks[0] != 10 || ticks[1] != 10 {
		t.Fatalf("ticks after resume = %v, want 10 each", ticks)
	}
}

// A crash on a shard with no OnCrash handler re-raises the panic on the
// caller of Run, like a standalone Scheduler; with a handler it is
// recorded on the shard.
func TestShardedCrashPropagation(t *testing.T) {
	ss := NewSharded(2, time.Millisecond)
	ss.Go(1, "bomb", func(tk *Task) { panic("boom") })
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		_ = ss.Run()
		t.Fatal("run returned instead of panicking")
	}()

	ss = NewSharded(2, time.Millisecond)
	ss.Shard(1).OnCrash = func(CrashInfo) {}
	ss.Go(1, "bomb", func(tk *Task) { panic("boom") })
	if err := ss.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := ss.Shard(1).Crashes(); len(got) != 1 || got[0].Value != "boom" {
		t.Fatalf("crashes = %v, want one boom", got)
	}
}

// shardedScript is a deterministic pseudo-random workload description,
// generated once from a seed and then executed; runSharded executes it
// and returns everything observable about the run.
type shardedScript struct {
	shards  int
	quantum time.Duration
	tasks   []scriptTask
}

type scriptTask struct {
	shard int
	steps []scriptStep
}

type scriptStep struct {
	op      int // 0 sleep, 1 advance, 2 yield, 3 send
	dur     time.Duration
	target  int
	payload int
}

func genShardedScript(seed int64, shards, tasksPerShard, steps int) shardedScript {
	rng := rand.New(rand.NewSource(seed))
	sc := shardedScript{shards: shards, quantum: time.Millisecond}
	for s := 0; s < shards; s++ {
		for t := 0; t < tasksPerShard; t++ {
			st := scriptTask{shard: s}
			for i := 0; i < steps; i++ {
				step := scriptStep{op: rng.Intn(4)}
				switch step.op {
				case 0, 1:
					step.dur = time.Duration(rng.Intn(2500)) * time.Microsecond
				case 3:
					step.target = rng.Intn(shards)
					step.payload = rng.Int()
				}
				st.steps = append(st.steps, step)
			}
			sc.tasks = append(sc.tasks, st)
		}
	}
	return sc
}

type shardedRunResult struct {
	trace      []string
	logs       [][]string // per-shard message arrival logs
	clocks     []time.Duration
	dispatches int64
}

func runShardedScript(sc shardedScript) (shardedRunResult, error) {
	ss := NewSharded(sc.shards, sc.quantum)
	ss.SetTracing(true)
	logs := make([][]string, sc.shards)
	for ti, st := range sc.tasks {
		st := st
		ss.Go(st.shard, fmt.Sprintf("s%dt%d", st.shard, ti), func(tk *Task) {
			for _, step := range st.steps {
				switch step.op {
				case 0:
					tk.Sleep(step.dur)
				case 1:
					tk.Advance(step.dur)
				case 2:
					tk.Yield()
				case 3:
					payload := step.payload
					target := step.target
					sent := tk.Now()
					ss.Send(tk, target, "xmsg", func(rk *Task) {
						// Only tasks on shard `target` touch logs[target].
						logs[target] = append(logs[target],
							fmt.Sprintf("%d<-%d@%d/%d", target, payload, sent, rk.Now()))
					})
				}
			}
		})
	}
	err := ss.Run()
	res := shardedRunResult{trace: ss.MergedTrace(), logs: logs, dispatches: ss.Dispatches()}
	for i := 0; i < sc.shards; i++ {
		res.clocks = append(res.clocks, ss.Shard(i).Now())
	}
	return res, err
}

// The tentpole property: a sharded run is bit-for-bit reproducible.
// The same seeded workload — shard-local compute, timers, yields, and
// cross-shard messages — is run twice on real parallel OS threads; the
// merged traces, per-shard message logs, clocks and dispatch counts
// must be identical. `make check` runs this under -race, which also
// proves the epoch barrier is the only cross-thread interaction.
func TestShardedRunTwiceDeterministic(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			sc := genShardedScript(seed, shards, 3, 40)
			a, errA := runShardedScript(sc)
			b, errB := runShardedScript(sc)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("shards=%d seed=%d: error mismatch: %v vs %v", shards, seed, errA, errB)
			}
			if !reflect.DeepEqual(a.trace, b.trace) {
				t.Fatalf("shards=%d seed=%d: merged traces differ (len %d vs %d)",
					shards, seed, len(a.trace), len(b.trace))
			}
			if !reflect.DeepEqual(a.logs, b.logs) {
				t.Fatalf("shards=%d seed=%d: cross-shard delivery logs differ:\n%v\nvs\n%v",
					shards, seed, a.logs, b.logs)
			}
			if !reflect.DeepEqual(a.clocks, b.clocks) {
				t.Fatalf("shards=%d seed=%d: clocks differ: %v vs %v", shards, seed, a.clocks, b.clocks)
			}
			if a.dispatches != b.dispatches {
				t.Fatalf("shards=%d seed=%d: dispatches differ: %d vs %d",
					shards, seed, a.dispatches, b.dispatches)
			}
			if len(a.trace) == 0 {
				t.Fatalf("shards=%d seed=%d: empty merged trace", shards, seed)
			}
		}
	}
}

// The merged trace is globally time-ordered and tagged per shard.
func TestShardedMergedTraceOrdered(t *testing.T) {
	sc := genShardedScript(7, 3, 2, 30)
	res, err := runShardedScript(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	last := int64(-1)
	for _, line := range res.trace {
		var shard int
		var us int64
		var rest string
		if _, err := fmt.Sscanf(line, "s%d|%d:%s", &shard, &us, &rest); err != nil {
			t.Fatalf("unparseable merged trace line %q: %v", line, err)
		}
		if us < last {
			t.Fatalf("merged trace went backwards at %q (prev %dus)", line, last)
		}
		last = us
	}
}
