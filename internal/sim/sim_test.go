package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSingleTaskRuns(t *testing.T) {
	s := New()
	ran := false
	s.Go("a", func(tk *Task) { ran = true })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
}

func TestRoundRobinOrder(t *testing.T) {
	s := New()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Go(name, func(tk *Task) {
			for i := 0; i < 2; i++ {
				order = append(order, name)
				tk.Yield()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now = %v, want 0", s.Now())
	}
}

func TestAdvanceMovesClock(t *testing.T) {
	s := New()
	s.Go("a", func(tk *Task) {
		tk.Advance(5 * time.Millisecond)
		if tk.Now() != 5*time.Millisecond {
			t.Errorf("Now = %v, want 5ms", tk.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("final Now = %v", s.Now())
	}
}

func TestSleepWakesAtDeadline(t *testing.T) {
	s := New()
	var woke time.Duration
	s.Go("sleeper", func(tk *Task) {
		tk.Sleep(10 * time.Millisecond)
		woke = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 10*time.Millisecond {
		t.Fatalf("woke at %v, want 10ms", woke)
	}
}

func TestSleepersWakeInDeadlineOrder(t *testing.T) {
	s := New()
	var order []string
	s.Go("late", func(tk *Task) {
		tk.Sleep(20 * time.Millisecond)
		order = append(order, "late")
	})
	s.Go("early", func(tk *Task) {
		tk.Sleep(5 * time.Millisecond)
		order = append(order, "early")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("order = %v", order)
	}
}

func TestAdvanceFiresDueTimers(t *testing.T) {
	s := New()
	fired := false
	s.Go("sleeper", func(tk *Task) {
		tk.Sleep(3 * time.Millisecond)
		fired = true
	})
	s.Go("worker", func(tk *Task) {
		tk.Yield() // let sleeper park first
		tk.Advance(10 * time.Millisecond)
		tk.Yield() // sleeper should now run
		if !fired {
			t.Error("sleeper did not fire during Advance window")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBlockAndWake(t *testing.T) {
	s := New()
	var q WaitQueue
	got := 0
	s.Go("waiter", func(tk *Task) {
		tk.Block(&q)
		got = 42
	})
	s.Go("waker", func(tk *Task) {
		tk.Yield() // ensure waiter is parked
		q.WakeOne(s)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 42 {
		t.Fatal("waiter never woke")
	}
}

func TestWakeAllWakesEveryone(t *testing.T) {
	s := New()
	var q WaitQueue
	woken := 0
	for i := 0; i < 5; i++ {
		s.Go("w", func(tk *Task) {
			tk.Block(&q)
			woken++
		})
	}
	s.Go("waker", func(tk *Task) {
		tk.Yield()
		if n := q.WakeAll(s); n != 5 {
			t.Errorf("WakeAll woke %d, want 5", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New()
	var q WaitQueue
	s.Go("stuck", func(tk *Task) { tk.Block(&q) })
	err := s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Fatalf("Blocked = %v", dl.Blocked)
	}
}

func TestKillBlockedTask(t *testing.T) {
	s := New()
	var q WaitQueue
	cleaned := false
	victim := s.Go("victim", func(tk *Task) {
		defer func() { cleaned = true }()
		tk.Block(&q)
		t.Error("victim survived kill")
	})
	s.Go("killer", func(tk *Task) {
		tk.Yield()
		victim.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !cleaned {
		t.Fatal("victim's deferred cleanup did not run")
	}
	if !victim.Done() {
		t.Fatal("victim not done")
	}
	if victim.Crashed() {
		t.Fatal("kill should not count as a crash")
	}
}

func TestKillSleepingTask(t *testing.T) {
	s := New()
	victim := s.Go("victim", func(tk *Task) {
		tk.Sleep(time.Hour)
		t.Error("victim survived kill")
	})
	s.Go("killer", func(tk *Task) {
		tk.Yield()
		victim.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Now() >= time.Hour {
		t.Fatalf("clock ran to the sleep deadline: %v", s.Now())
	}
}

func TestCrashIsCaptured(t *testing.T) {
	s := New()
	var crash CrashInfo
	s.OnCrash = func(c CrashInfo) { crash = c }
	s.Go("bad", func(tk *Task) { panic("boom") })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if crash.Task != "bad" || crash.Value != "boom" {
		t.Fatalf("crash = %+v", crash)
	}
	if len(s.Crashes()) != 1 {
		t.Fatalf("Crashes = %v", s.Crashes())
	}
}

func TestCrashWithoutHandlerPanics(t *testing.T) {
	s := New()
	s.Go("bad", func(tk *Task) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	_ = s.Run()
}

func TestJoinWaitsForExit(t *testing.T) {
	s := New()
	var order []string
	worker := s.Go("worker", func(tk *Task) {
		tk.Sleep(5 * time.Millisecond)
		order = append(order, "worker")
	})
	s.Go("joiner", func(tk *Task) {
		tk.Join(worker)
		order = append(order, "joiner")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "worker" || order[1] != "joiner" {
		t.Fatalf("order = %v", order)
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	s := New()
	ticks := 0
	s.Go("ticker", func(tk *Task) {
		for {
			tk.Sleep(10 * time.Millisecond)
			ticks++
		}
	})
	if err := s.RunFor(35 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	// Continue for another window.
	if err := s.RunFor(30 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if ticks != 6 {
		t.Fatalf("ticks = %d, want 6", ticks)
	}
}

func TestBlockTimeoutTimesOut(t *testing.T) {
	s := New()
	var q WaitQueue
	var woken bool
	s.Go("waiter", func(tk *Task) {
		woken = tk.BlockTimeout(&q, 5*time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woken {
		t.Fatal("expected timeout, got wake")
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestBlockTimeoutWoken(t *testing.T) {
	s := New()
	var q WaitQueue
	var woken bool
	s.Go("waiter", func(tk *Task) {
		woken = tk.BlockTimeout(&q, time.Hour)
	})
	s.Go("waker", func(tk *Task) {
		tk.Yield()
		q.WakeOne(s)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woken {
		t.Fatal("expected wake, got timeout")
	}
	if s.Now() != 0 {
		t.Fatalf("Now = %v, want 0", s.Now())
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	s := New()
	var mu Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		s.Go("worker", func(tk *Task) {
			for j := 0; j < 3; j++ {
				mu.Lock(tk)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				tk.Yield() // try to expose races
				inside--
				mu.Unlock(tk)
				tk.Yield()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
}

func TestMutexTryLock(t *testing.T) {
	s := New()
	var mu Mutex
	s.Go("a", func(tk *Task) {
		if !mu.TryLock(tk) {
			t.Error("first TryLock failed")
		}
		if mu.TryLock(tk) {
			t.Error("second TryLock succeeded while held")
		}
		mu.Unlock(tk)
		if !mu.TryLock(tk) {
			t.Error("TryLock after Unlock failed")
		}
		mu.Unlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMutexDeadlockDetected(t *testing.T) {
	// The paper's timing-error shape: T1 holds the lock and blocks
	// forever; T2 waits for the lock. The scheduler reports deadlock.
	s := New()
	var mu Mutex
	var never WaitQueue
	s.Go("t1", func(tk *Task) {
		mu.Lock(tk)
		tk.Block(&never) // simulates waiting for an update that can't happen
	})
	s.Go("t2", func(tk *Task) {
		mu.Lock(tk)
	})
	err := s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want deadlock", err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want 2 tasks", dl.Blocked)
	}
}

func TestCondSignalAndBroadcast(t *testing.T) {
	s := New()
	var c Cond
	done := 0
	for i := 0; i < 3; i++ {
		s.Go("w", func(tk *Task) {
			c.Wait(tk)
			done++
		})
	}
	s.Go("sig", func(tk *Task) {
		tk.Yield()
		if c.Waiters() != 3 {
			t.Errorf("Waiters = %d, want 3", c.Waiters())
		}
		c.Signal(s)
		tk.Yield()
		if done != 1 {
			t.Errorf("after Signal done = %d, want 1", done)
		}
		c.Broadcast(s)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() []string {
		s := New()
		s.SetTracing(true)
		var q WaitQueue
		s.Go("a", func(tk *Task) {
			tk.Advance(time.Millisecond)
			tk.Block(&q)
			tk.Advance(time.Millisecond)
		})
		s.Go("b", func(tk *Task) {
			tk.Sleep(2 * time.Millisecond)
			q.WakeOne(s)
		})
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s.Trace()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestGoFromInsideTask(t *testing.T) {
	s := New()
	ran := false
	s.Go("parent", func(tk *Task) {
		s.Go("child", func(tk2 *Task) { ran = true })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("child never ran")
	}
}

func TestKillIsIdempotent(t *testing.T) {
	s := New()
	victim := s.Go("victim", func(tk *Task) {
		var q WaitQueue
		tk.Block(&q)
	})
	s.Go("killer", func(tk *Task) {
		tk.Yield()
		victim.Kill()
		victim.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !victim.Done() {
		t.Fatal("victim not done")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateNew: "new", StateRunnable: "runnable", StateRunning: "running",
		StateBlocked: "blocked", StateSleeping: "sleeping", StateDone: "done",
	}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
	if State(99).String() != "state(99)" {
		t.Errorf("unknown state: %q", State(99).String())
	}
}

func TestAdvanceNegativeIsNoop(t *testing.T) {
	s := New()
	s.Go("a", func(tk *Task) {
		tk.Advance(-5 * time.Millisecond)
		if tk.Now() != 0 {
			t.Errorf("Now = %v after negative Advance", tk.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSleepZeroYields(t *testing.T) {
	s := New()
	var order []string
	s.Go("a", func(tk *Task) {
		order = append(order, "a1")
		tk.Sleep(0)
		order = append(order, "a2")
	})
	s.Go("b", func(tk *Task) {
		order = append(order, "b")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "a1,b,a2"
	got := strings.Join(order, ",")
	if got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestRunForDeadlockReported(t *testing.T) {
	s := New()
	var q WaitQueue
	s.Go("stuck", func(tk *Task) { tk.Block(&q) })
	err := s.RunFor(time.Second)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("RunFor = %v, want deadlock", err)
	}
}

func TestKillBeforeFirstRun(t *testing.T) {
	s := New()
	ran := false
	victim := s.Go("victim", func(tk *Task) { ran = true })
	// Kill while still in StateRunnable (never dispatched): the task
	// unwinds at its first scheduling point check... since it has not
	// started, its body runs until the first blocking call; a body with
	// no blocking calls completes. Document that semantics.
	victim.Kill()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = ran // either outcome is consistent; the run must terminate.
	if !victim.Done() {
		t.Fatal("victim not done")
	}
}

func TestWaitQueueWakeOneOrder(t *testing.T) {
	s := New()
	var q WaitQueue
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		s.Go(name, func(tk *Task) {
			tk.Block(&q)
			order = append(order, name)
		})
	}
	s.Go("waker", func(tk *Task) {
		tk.Yield()
		for i := 0; i < 3; i++ {
			q.WakeOne(s)
			tk.Yield()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if strings.Join(order, ",") != "first,second,third" {
		t.Fatalf("FIFO broken: %v", order)
	}
}
