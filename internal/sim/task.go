package sim

import (
	"container/heap"
	"time"
)

// killedPanic is the sentinel used to unwind a task that was killed while
// blocked or yielding. It is recovered by the task wrapper in Scheduler.Go
// and never escapes the scheduler.
type killedPanic struct{}

// Task is a cooperative thread of execution inside a Scheduler. All Task
// methods must be called from the task's own function (except Kill and
// Done, which may be called from any task).
type Task struct {
	id     int
	name   string
	s      *Scheduler
	resume chan struct{}
	state  State

	killed   bool
	crashed  bool
	crashVal interface{}

	// queue the task is currently blocked on, for removal on Kill.
	waitingOn *WaitQueue
	joiners   WaitQueue

	// labels is the profiling attribution stack (see PushLabel). Always
	// empty unless a SliceProfiler is attached to the scheduler.
	labels []string
}

// Name returns the task's name, as passed to Scheduler.Go.
func (t *Task) Name() string { return t.name }

// ID returns the task's unique id within its scheduler.
func (t *Task) ID() int { return t.id }

// Scheduler returns the scheduler that owns this task.
func (t *Task) Scheduler() *Scheduler { return t.s }

// State returns the task's current lifecycle state.
func (t *Task) State() State { return t.state }

// Done reports whether the task has exited.
func (t *Task) Done() bool { return t.state == StateDone }

// Crashed reports whether the task exited via panic.
func (t *Task) Crashed() bool { return t.crashed }

// Killed reports whether Kill has been called on the task.
func (t *Task) Killed() bool { return t.killed }

// Now returns the current virtual time.
func (t *Task) Now() time.Duration { return t.s.clock }

// park hands control back to the scheduler and waits to be resumed. On
// resume, if the task was killed in the meantime, it unwinds via
// killedPanic so deferred cleanup still runs.
func (t *Task) park() {
	t.s.parked <- struct{}{}
	<-t.resume
	t.state = StateRunning
	if t.killed {
		panic(killedPanic{})
	}
}

// Yield places the task at the back of the run queue and lets other
// runnable tasks execute first.
func (t *Task) Yield() {
	t.checkCurrent("Yield")
	t.s.enqueue(t)
	t.park()
}

// Advance charges d of virtual work to the clock: the clock moves forward
// and any timers that become due fire (their tasks become runnable behind
// this one). The calling task keeps running.
func (t *Task) Advance(d time.Duration) {
	t.checkCurrent("Advance")
	if d < 0 {
		d = 0
	}
	t.s.advanceTo(t.s.clock + d)
}

// Sleep parks the task until the virtual clock reaches now+d.
func (t *Task) Sleep(d time.Duration) {
	t.checkCurrent("Sleep")
	if d <= 0 {
		t.Yield()
		return
	}
	t.state = StateSleeping
	t.s.nextSeq++
	heap.Push(&t.s.timers, &timer{when: t.s.clock + d, seq: t.s.nextSeq, task: t})
	t.park()
}

// Block parks the task on q until another task wakes it. The caller must
// re-check its wait condition after Block returns: wakeups can be
// collective (WakeAll).
func (t *Task) Block(q *WaitQueue) {
	t.checkCurrent("Block")
	t.state = StateBlocked
	t.waitingOn = q
	q.tasks = append(q.tasks, t)
	t.s.blocked[t] = struct{}{}
	t.park()
}

// BlockTimeout parks the task on q until woken or until d elapses. It
// reports whether the task was woken (true) or timed out (false).
func (t *Task) BlockTimeout(q *WaitQueue, d time.Duration) bool {
	t.checkCurrent("BlockTimeout")
	t.state = StateBlocked
	t.waitingOn = q
	q.tasks = append(q.tasks, t)
	t.s.blocked[t] = struct{}{}
	t.s.nextSeq++
	heap.Push(&t.s.timers, &timer{when: t.s.clock + d, seq: t.s.nextSeq, task: t})
	// The timer fires only if the task is still StateSleeping; blocked
	// tasks need the sleeping state for the timer to wake them, so use a
	// dedicated state transition: mark as sleeping-with-queue.
	t.state = StateSleeping
	t.park()
	// Determine outcome: if still on the queue, it was a timeout.
	timedOut := q.remove(t)
	delete(t.s.blocked, t)
	t.waitingOn = nil
	return !timedOut
}

// Join blocks until other has exited.
func (t *Task) Join(other *Task) {
	t.checkCurrent("Join")
	for !other.Done() {
		t.Block(&other.joiners)
	}
}

// Kill marks the task for termination. If the task is blocked or sleeping
// it becomes runnable and unwinds the next time it is scheduled; if it is
// currently running it unwinds at its next scheduling point. Killing a
// done task is a no-op.
func (t *Task) Kill() {
	if t.state == StateDone || t.killed {
		return
	}
	t.killed = true
	switch t.state {
	case StateBlocked:
		if t.waitingOn != nil {
			t.waitingOn.remove(t)
			t.waitingOn = nil
		}
		delete(t.s.blocked, t)
		t.s.enqueue(t)
	case StateSleeping:
		// Leave the timer in the heap (it will find the task not
		// sleeping and do nothing); schedule the task now.
		if t.waitingOn != nil {
			t.waitingOn.remove(t)
			t.waitingOn = nil
		}
		delete(t.s.blocked, t)
		t.s.enqueue(t)
	}
}

func (t *Task) checkCurrent(op string) {
	if t.s.current != t {
		panic("sim: " + op + " called from outside task " + t.name)
	}
	// A kill issued while this task was running takes effect at its next
	// scheduling point.
	if t.killed {
		panic(killedPanic{})
	}
}

// WaitQueue is an ordered set of tasks blocked on a condition. The zero
// value is ready to use.
type WaitQueue struct {
	tasks []*Task
}

// Len returns the number of tasks parked on the queue.
func (q *WaitQueue) Len() int { return len(q.tasks) }

// WakeOne makes the oldest parked task runnable. It reports whether a task
// was woken.
func (q *WaitQueue) WakeOne(s *Scheduler) bool {
	for len(q.tasks) > 0 {
		t := q.tasks[0]
		q.tasks = q.tasks[1:]
		if t.state == StateBlocked || t.state == StateSleeping {
			delete(s.blocked, t)
			t.waitingOn = nil
			t.state = StateRunnable
			s.runq = append(s.runq, t)
			return true
		}
	}
	return false
}

// WakeAll makes every parked task runnable, preserving FIFO order.
func (q *WaitQueue) WakeAll(s *Scheduler) int {
	n := 0
	for q.WakeOne(s) {
		n++
	}
	return n
}

func (q *WaitQueue) wakeAll(s *Scheduler) { q.WakeAll(s) }

// remove deletes t from the queue if present, reporting whether it was.
func (q *WaitQueue) remove(t *Task) bool {
	for i, x := range q.tasks {
		if x == t {
			q.tasks = append(q.tasks[:i], q.tasks[i+1:]...)
			return true
		}
	}
	return false
}
