package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestTraceCapCircularTail pins the fix for unbounded trace growth:
// once the cap is hit, the trace becomes a circular tail that keeps the
// newest entries and counts what it evicted.
func TestTraceCapCircularTail(t *testing.T) {
	s := New()
	s.SetTraceCapacity(4)
	s.SetTracing(true)
	s.Go("worker", func(tk *Task) {
		for i := 0; i < 10; i++ {
			tk.Advance(time.Microsecond)
			tk.Yield()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	trace := s.Trace()
	if len(trace) != 4 {
		t.Fatalf("trace length %d, want capacity 4\ntrace: %v", len(trace), trace)
	}
	total := s.Dispatches()
	if want := total - 4; s.TraceDropped() != want {
		t.Errorf("TraceDropped = %d, want %d (of %d dispatches)", s.TraceDropped(), want, total)
	}
	// The surviving window must be the newest dispatches in order: the
	// worker yields every 1µs, so timestamps are strictly increasing and
	// the last entry is the final dispatch.
	for i := 1; i < len(trace); i++ {
		if trace[i-1] >= trace[i] && len(trace[i-1]) == len(trace[i]) {
			t.Errorf("trace not in dispatch order at %d: %q then %q", i, trace[i-1], trace[i])
		}
	}
	// The final dispatch is the one that resumes the worker after its
	// last Yield, at the final clock value.
	last := fmt.Sprintf("%d:worker", s.Now()/time.Microsecond)
	if trace[len(trace)-1] != last {
		t.Errorf("newest trace entry %q, want %q", trace[len(trace)-1], last)
	}
}

// TestTraceDefaultCapBounded verifies SetTracing alone cannot grow the
// trace past DefaultTraceCap (the regression this PR fixes: it used to
// append forever).
func TestTraceDefaultCapBounded(t *testing.T) {
	s := New()
	s.SetTracing(true)
	if s.traceCap != DefaultTraceCap {
		t.Fatalf("traceCap = %d after SetTracing, want DefaultTraceCap %d", s.traceCap, DefaultTraceCap)
	}
}

// TestSetTraceCapacityClears documents that resizing restarts the tail.
func TestSetTraceCapacityClears(t *testing.T) {
	s := New()
	s.SetTraceCapacity(2)
	s.SetTracing(true)
	s.Go("a", func(tk *Task) {
		for i := 0; i < 5; i++ {
			tk.Yield()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.SetTraceCapacity(8)
	if len(s.Trace()) != 0 || s.TraceDropped() != 0 {
		t.Fatalf("trace not cleared by SetTraceCapacity: len=%d dropped=%d", len(s.Trace()), s.TraceDropped())
	}
}

// TestOnSliceObservesDispatches checks the dispatch hook sees every run
// slice with its virtual interval, and that attaching it does not
// change scheduling (same final clock and dispatch count as a bare
// run).
func TestOnSliceObservesDispatches(t *testing.T) {
	run := func(hook bool) (slices int, busy time.Duration, clock time.Duration, dispatches int64) {
		s := New()
		if hook {
			s.OnSlice = func(task string, start, end time.Duration) {
				if end < start {
					t.Errorf("slice for %q ends before it starts: %v > %v", task, start, end)
				}
				slices++
				busy += end - start
			}
		}
		s.Go("a", func(tk *Task) {
			tk.Advance(3 * time.Millisecond)
			tk.Yield()
			tk.Advance(time.Millisecond)
		})
		s.Go("b", func(tk *Task) {
			tk.Sleep(2 * time.Millisecond)
		})
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return slices, busy, s.Now(), s.Dispatches()
	}
	slices, busy, clock, dispatches := run(true)
	if int64(slices) != dispatches {
		t.Errorf("hook saw %d slices, want one per dispatch (%d)", slices, dispatches)
	}
	// Task a charges 4ms of CPU; task b sleeps (off-CPU). The summed
	// slice time is exactly the charged work.
	if want := 4 * time.Millisecond; busy != want {
		t.Errorf("summed slice time %v, want %v", busy, want)
	}
	_, _, bareClock, bareDispatches := run(false)
	if clock != bareClock || dispatches != bareDispatches {
		t.Errorf("OnSlice perturbed the run: clock %v vs %v, dispatches %d vs %d",
			clock, bareClock, dispatches, bareDispatches)
	}
}
