// Package sysabi defines the virtual system-call ABI shared by the virtual
// OS (internal/vos), the MVE monitor (internal/mve), and the applications.
//
// It plays the role the Linux syscall ABI plays in the paper: the single
// boundary through which every externally visible effect of a program
// flows, and therefore the level at which multi-version execution records,
// replays, compares, and rewrites behaviour.
package sysabi

import (
	"bytes"
	"fmt"

	"mvedsua/internal/sim"
)

// Op identifies a virtual system call.
type Op int

// The virtual syscall set. It covers what the paper's servers need:
// stream sockets, files, readiness polling, time, and process control.
const (
	OpInvalid Op = iota

	// Sockets.
	OpSocket  // create a listening socket endpoint; Args[0] = port
	OpAccept  // FD = listening fd; returns new connection fd
	OpRead    // FD, Args[0] = max bytes; returns data
	OpWrite   // FD, Buf = payload
	OpClose   // FD
	OpConnect // client side: Args[0] = port; returns connection fd

	// Files.
	OpOpen    // Path, Args[0] = flags (OpenRead/OpenWrite/OpenAppend)
	OpFRead   // FD, Args[0] = max bytes
	OpFWrite  // FD, Buf
	OpStat    // Path; returns size in Ret
	OpUnlink  // Path
	OpListDir // Path; returns newline-joined names

	// Event polling (epoll-like).
	OpEpollCreate // returns epoll fd
	OpEpollCtl    // FD = epoll fd, Args[0] = watched fd, Args[1] = add(1)/del(0)
	OpEpollWait   // FD = epoll fd, Args[0] = max events; returns ready fds

	// Misc.
	OpClock  // returns virtual nanoseconds in Ret
	OpGetPID // returns logical pid
	OpExit   // Args[0] = status
)

var opNames = map[Op]string{
	OpInvalid:     "invalid",
	OpSocket:      "socket",
	OpAccept:      "accept",
	OpRead:        "read",
	OpWrite:       "write",
	OpClose:       "close",
	OpConnect:     "connect",
	OpOpen:        "open",
	OpFRead:       "fread",
	OpFWrite:      "fwrite",
	OpStat:        "stat",
	OpUnlink:      "unlink",
	OpListDir:     "listdir",
	OpEpollCreate: "epoll_create",
	OpEpollCtl:    "epoll_ctl",
	OpEpollWait:   "epoll_wait",
	OpClock:       "clock",
	OpGetPID:      "getpid",
	OpExit:        "exit",
}

// String returns the syscall's conventional name.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Open flags for OpOpen.
const (
	OpenRead   = 0
	OpenWrite  = 1
	OpenAppend = 2
)

// Errno is a virtual error number. Zero means success.
type Errno int

// Virtual errnos, mirroring the POSIX names the servers care about.
const (
	OK         Errno = 0
	EBADF      Errno = 9
	EAGAIN     Errno = 11
	ENOMEM     Errno = 12
	EFAULT     Errno = 14
	EINVAL     Errno = 22
	ENOENT     Errno = 2
	EPIPE      Errno = 32
	ECONNRESET Errno = 104
	EKILLED    Errno = 513 // task killed while blocked in a syscall (internal)
)

// Error implements the error interface for non-zero errnos.
func (e Errno) Error() string {
	switch e {
	case OK:
		return "ok"
	case EBADF:
		return "bad file descriptor"
	case EAGAIN:
		return "resource temporarily unavailable"
	case ENOMEM:
		return "out of memory"
	case EFAULT:
		return "bad address"
	case EINVAL:
		return "invalid argument"
	case ENOENT:
		return "no such file or directory"
	case EPIPE:
		return "broken pipe"
	case ECONNRESET:
		return "connection reset by peer"
	case EKILLED:
		return "task killed"
	default:
		return fmt.Sprintf("errno %d", int(e))
	}
}

// Call is one virtual system call as issued by an application.
type Call struct {
	Op   Op
	FD   int
	Buf  []byte   // payload for writes
	Args [2]int64 // numeric arguments (port, max bytes, flags, ...)
	Path string   // for file ops

	// TID is the logical thread id of the issuing application thread
	// (0 for the main thread). Logical ids are stable across versions —
	// they follow thread spawn order — which lets the MVE monitor match
	// a follower thread against the corresponding leader thread's
	// events, the way Varan matches per-thread event streams.
	TID int

	// ReqID tags the call with a client request id for latency
	// attribution (observability only). A tagged client write carries it
	// into the kernel, which threads it to the server's read result; the
	// MVE leader then stamps it onto the recorded response event so the
	// follower's validation path can close the request's timeline. Equal
	// deliberately ignores it — follower-issued calls never carry request
	// ids, and observation must not affect divergence checking.
	ReqID uint64
}

// Result is the kernel's (or, for a follower, the ring buffer's) answer.
type Result struct {
	Ret   int64  // primary return value: fd, byte count, size, time
	Data  []byte // returned data for reads, accept peer info, etc.
	Ready []int  // ready fds for epoll_wait
	Err   Errno

	// ReqID carries the request id of the inbound payload a read
	// returned (observability only; see Call.ReqID).
	ReqID uint64
}

// OK reports whether the result is a success.
func (r Result) OK() bool { return r.Err == OK }

// String formats a call for traces and divergence reports.
func (c Call) String() string {
	switch c.Op {
	case OpRead, OpFRead:
		return fmt.Sprintf("%s(fd=%d, n=%d)", c.Op, c.FD, c.Args[0])
	case OpWrite, OpFWrite:
		return fmt.Sprintf("%s(fd=%d, %q)", c.Op, c.FD, truncate(c.Buf, 48))
	case OpOpen, OpStat, OpUnlink, OpListDir:
		return fmt.Sprintf("%s(%q)", c.Op, c.Path)
	case OpSocket, OpConnect:
		return fmt.Sprintf("%s(port=%d)", c.Op, c.Args[0])
	case OpEpollCtl:
		return fmt.Sprintf("%s(efd=%d, fd=%d, add=%d)", c.Op, c.FD, c.Args[0], c.Args[1])
	case OpEpollWait:
		return fmt.Sprintf("%s(efd=%d)", c.Op, c.FD)
	case OpAccept, OpClose:
		return fmt.Sprintf("%s(fd=%d)", c.Op, c.FD)
	default:
		return fmt.Sprintf("%s()", c.Op)
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

// Equal reports whether two calls are observably identical: same op, same
// fd, same numeric args, same payload, same path, same logical thread.
// This is the MVE monitor's ground definition of "the follower did the
// same thing as the leader".
func (c Call) Equal(o Call) bool {
	return c.Op == o.Op &&
		c.FD == o.FD &&
		c.Args == o.Args &&
		c.Path == o.Path &&
		c.TID == o.TID &&
		bytes.Equal(c.Buf, o.Buf)
}

// HasOutput reports whether the call carries externally visible output that
// must be byte-compared between versions (as opposed to input calls, where
// the follower receives the leader's recorded data).
func (c Call) HasOutput() bool {
	return c.Op == OpWrite || c.Op == OpFWrite
}

// IsInput reports whether the call consumes external input, i.e. the
// follower must be fed the leader's recorded result data.
func (c Call) IsInput() bool {
	switch c.Op {
	case OpRead, OpFRead, OpAccept, OpEpollWait, OpClock, OpListDir, OpStat:
		return true
	}
	return false
}

// Clone returns a deep copy of the call (payloads are not shared).
func (c Call) Clone() Call {
	out := c
	if c.Buf != nil {
		out.Buf = append([]byte(nil), c.Buf...)
	}
	return out
}

// Clone returns a deep copy of the result.
func (r Result) Clone() Result {
	out := r
	if r.Data != nil {
		out.Data = append([]byte(nil), r.Data...)
	}
	if r.Ready != nil {
		out.Ready = append([]int(nil), r.Ready...)
	}
	return out
}

// Event pairs a call with its result; it is the unit stored in the MVE ring
// buffer and consumed by followers.
type Event struct {
	Seq    uint64
	Call   Call
	Result Result
}

// String formats the event for traces.
func (e Event) String() string {
	if e.Result.Err != OK {
		return fmt.Sprintf("#%d %s = %v", e.Seq, e.Call, e.Result.Err)
	}
	return fmt.Sprintf("#%d %s = %d", e.Seq, e.Call, e.Result.Ret)
}

// Dispatcher executes virtual system calls. The virtual OS implements it;
// the MVE monitor wraps it to intercept, record, or replay.
type Dispatcher interface {
	// Invoke executes the call on behalf of the given task and returns its
	// result. Invoke may block the task (cooperatively), e.g. on reads
	// from an empty socket or on a full MVE ring buffer.
	Invoke(t *sim.Task, call Call) Result
}
