package sysabi

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpRead:      "read",
		OpWrite:     "write",
		OpEpollWait: "epoll_wait",
		Op(999):     "op(999)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
}

func TestErrnoError(t *testing.T) {
	if EBADF.Error() != "bad file descriptor" {
		t.Errorf("EBADF = %q", EBADF.Error())
	}
	if Errno(9999).Error() != "errno 9999" {
		t.Errorf("unknown errno = %q", Errno(9999).Error())
	}
}

func TestCallEqual(t *testing.T) {
	a := Call{Op: OpWrite, FD: 3, Buf: []byte("hello")}
	b := Call{Op: OpWrite, FD: 3, Buf: []byte("hello")}
	if !a.Equal(b) {
		t.Fatal("identical calls not equal")
	}
	b.Buf = []byte("hellO")
	if a.Equal(b) {
		t.Fatal("different payloads compared equal")
	}
	b = a.Clone()
	b.FD = 4
	if a.Equal(b) {
		t.Fatal("different fds compared equal")
	}
	b = a.Clone()
	b.Op = OpRead
	if a.Equal(b) {
		t.Fatal("different ops compared equal")
	}
	b = a.Clone()
	b.Args[1] = 7
	if a.Equal(b) {
		t.Fatal("different args compared equal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := Call{Op: OpWrite, Buf: []byte("abc")}
	d := c.Clone()
	d.Buf[0] = 'X'
	if c.Buf[0] != 'a' {
		t.Fatal("Clone shares the payload buffer")
	}
	r := Result{Data: []byte("xyz"), Ready: []int{1, 2}}
	r2 := r.Clone()
	r2.Data[0] = 'Q'
	r2.Ready[0] = 99
	if r.Data[0] != 'x' || r.Ready[0] != 1 {
		t.Fatal("Result.Clone shares slices")
	}
}

func TestHasOutputAndIsInput(t *testing.T) {
	if !(Call{Op: OpWrite}).HasOutput() {
		t.Error("write should be output")
	}
	if (Call{Op: OpRead}).HasOutput() {
		t.Error("read should not be output")
	}
	for _, op := range []Op{OpRead, OpFRead, OpAccept, OpEpollWait, OpClock} {
		if !(Call{Op: op}).IsInput() {
			t.Errorf("%v should be input", op)
		}
	}
	if (Call{Op: OpWrite}).IsInput() {
		t.Error("write should not be input")
	}
}

func TestCallStringForms(t *testing.T) {
	cases := []struct {
		c    Call
		want string
	}{
		{Call{Op: OpRead, FD: 5, Args: [2]int64{128, 0}}, `read(fd=5, n=128)`},
		{Call{Op: OpWrite, FD: 2, Buf: []byte("hi")}, `write(fd=2, "hi")`},
		{Call{Op: OpOpen, Path: "/etc/x"}, `open("/etc/x")`},
		{Call{Op: OpSocket, Args: [2]int64{6379, 0}}, `socket(port=6379)`},
		{Call{Op: OpAccept, FD: 3}, `accept(fd=3)`},
		{Call{Op: OpClock}, `clock()`},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestWriteStringTruncates(t *testing.T) {
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'a'
	}
	s := Call{Op: OpWrite, FD: 1, Buf: long}.String()
	if len(s) > 80 {
		t.Errorf("String did not truncate: %d chars", len(s))
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Call: Call{Op: OpClose, FD: 3}, Result: Result{Ret: 0}}
	if e.String() != "#7 close(fd=3) = 0" {
		t.Errorf("Event.String() = %q", e.String())
	}
	e.Result.Err = EBADF
	if e.String() != "#7 close(fd=3) = bad file descriptor" {
		t.Errorf("Event.String() = %q", e.String())
	}
}

func TestResultOK(t *testing.T) {
	if !(Result{}).OK() {
		t.Error("zero result should be OK")
	}
	if (Result{Err: EPIPE}).OK() {
		t.Error("EPIPE should not be OK")
	}
}

// Property: Equal is reflexive on clones and symmetric.
func TestCallEqualProperties(t *testing.T) {
	f := func(op uint8, fd int, buf []byte, a0, a1 int64, path string) bool {
		c := Call{Op: Op(op % 20), FD: fd, Buf: buf, Args: [2]int64{a0, a1}, Path: path}
		d := c.Clone()
		return c.Equal(d) && d.Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mutating any field of a clone breaks equality.
func TestCallInequalityProperty(t *testing.T) {
	f := func(fd int, buf []byte) bool {
		c := Call{Op: OpWrite, FD: fd, Buf: buf}
		d := c.Clone()
		d.FD = fd + 1
		return !c.Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
