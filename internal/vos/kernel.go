// Package vos implements the virtual operating system the servers run on:
// stream sockets, an in-memory filesystem, epoll-like readiness, a virtual
// clock, and logical process ids. It executes the virtual syscall ABI
// defined in internal/sysabi and stands in for the Linux kernel of the
// paper's testbed (see DESIGN.md §1 for the substitution rationale).
package vos

import (
	"bytes"
	"sort"
	"time"

	"mvedsua/internal/obs"
	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

// Kernel is the virtual OS. All state mutation happens from sim tasks, one
// at a time, so no locking is needed.
type Kernel struct {
	sched   *sim.Scheduler
	fds     map[int]object
	nextFD  int
	ports   map[int64]*listener
	fs      map[string]*file
	pids    map[int]int64 // task id -> logical pid
	nextPID int64

	// activity is broadcast whenever socket state changes; epoll waiters
	// re-poll on each wakeup.
	activity sim.Cond

	// BaseCost, if non-nil, returns the virtual CPU time a syscall costs.
	// The benchmark harness installs the calibrated cost model here;
	// the default is free syscalls (pure functional testing).
	BaseCost func(sysabi.Call) time.Duration

	// Stats counts executed syscalls by op.
	Stats map[sysabi.Op]int

	// Rec, if non-nil, receives kernel-level observability (byte traffic
	// and open-fd gauges). Recording is additionally gated on
	// Rec.SpansEnabled, so an attached-but-unspanned recorder costs one
	// boolean check per syscall and the default benchmark runs stay
	// byte-identical to the committed golden artifacts.
	Rec *obs.Recorder
}

// object is anything an fd can refer to.
type object interface{ isObject() }

// NewKernel returns an empty kernel bound to the scheduler.
func NewKernel(s *sim.Scheduler) *Kernel {
	return &Kernel{
		sched:  s,
		fds:    make(map[int]object),
		nextFD: 3, // 0-2 reserved, as tradition demands
		ports:  make(map[int64]*listener),
		fs:     make(map[string]*file),
		pids:   make(map[int]int64),
		Stats:  make(map[sysabi.Op]int),
	}
}

// Scheduler returns the scheduler this kernel is bound to.
func (k *Kernel) Scheduler() *sim.Scheduler { return k.sched }

type listener struct {
	port    int64
	pending []*endpoint // server-side endpoints awaiting accept
	waiters sim.WaitQueue
	closed  bool
}

func (*listener) isObject() {}

// endpoint is one side of a connection. A connection is a pair of peered
// endpoints, each with its own inbox (full duplex).
type endpoint struct {
	inbox   bytes.Buffer // data waiting to be read by this side
	readers sim.WaitQueue
	closed  bool // this side closed (no more reads/writes from here)
	peer    *endpoint

	// reqID is the request id of the most recent tagged write into this
	// side's inbox; the next read returns and clears it (observability
	// only — see sysabi.Call.ReqID).
	reqID uint64
}

func (*endpoint) isObject() {}

type file struct {
	name string
	data []byte
}

// openFile is an fd referring to a file with a cursor.
type openFile struct {
	f      *file
	offset int
	flags  int64
}

func (*openFile) isObject() {}

type epoll struct {
	watched map[int]bool
}

func (*epoll) isObject() {}

func (k *Kernel) allocFD(o object) int {
	fd := k.nextFD
	k.nextFD++
	k.fds[fd] = o
	return fd
}

// Invoke implements sysabi.Dispatcher: it executes the call natively.
func (k *Kernel) Invoke(t *sim.Task, c sysabi.Call) sysabi.Result {
	k.Stats[c.Op]++
	if k.BaseCost != nil {
		if d := k.BaseCost(c); d > 0 {
			t.Advance(d)
		}
	}
	res := k.dispatch(t, c)
	if k.Rec.SpansEnabled() {
		k.observe(c, res)
	}
	return res
}

// observe reports kernel-level traffic into the recorder (span mode
// only — see the Rec field).
func (k *Kernel) observe(c sysabi.Call, res sysabi.Result) {
	switch c.Op {
	case sysabi.OpRead, sysabi.OpWrite:
		if res.OK() && res.Ret > 0 {
			k.Rec.Add(obs.CVOSNetBytes, res.Ret)
		}
	case sysabi.OpFRead, sysabi.OpFWrite:
		if res.OK() && res.Ret > 0 {
			k.Rec.Add(obs.CVOSFSBytes, res.Ret)
		}
	}
	k.Rec.SetGauge(obs.GVOSOpenFDs, int64(len(k.fds)))
}

func (k *Kernel) dispatch(t *sim.Task, c sysabi.Call) sysabi.Result {
	switch c.Op {
	case sysabi.OpSocket:
		return k.socket(c)
	case sysabi.OpAccept:
		return k.accept(t, c)
	case sysabi.OpConnect:
		return k.connect(c)
	case sysabi.OpRead:
		return k.read(t, c)
	case sysabi.OpWrite:
		return k.write(c)
	case sysabi.OpClose:
		return k.closeFD(c)
	case sysabi.OpOpen:
		return k.open(c)
	case sysabi.OpFRead:
		return k.fread(c)
	case sysabi.OpFWrite:
		return k.fwrite(c)
	case sysabi.OpStat:
		return k.stat(c)
	case sysabi.OpUnlink:
		return k.unlink(c)
	case sysabi.OpListDir:
		return k.listDir(c)
	case sysabi.OpEpollCreate:
		return sysabi.Result{Ret: int64(k.allocFD(&epoll{watched: make(map[int]bool)}))}
	case sysabi.OpEpollCtl:
		return k.epollCtl(c)
	case sysabi.OpEpollWait:
		return k.epollWait(t, c)
	case sysabi.OpClock:
		return sysabi.Result{Ret: int64(k.sched.Now())}
	case sysabi.OpGetPID:
		return k.getPID(t)
	case sysabi.OpExit:
		return sysabi.Result{Ret: c.Args[0]}
	default:
		return sysabi.Result{Err: sysabi.EINVAL}
	}
}

func (k *Kernel) socket(c sysabi.Call) sysabi.Result {
	port := c.Args[0]
	if _, taken := k.ports[port]; taken {
		return sysabi.Result{Err: sysabi.EINVAL}
	}
	l := &listener{port: port}
	k.ports[port] = l
	return sysabi.Result{Ret: int64(k.allocFD(l))}
}

func (k *Kernel) accept(t *sim.Task, c sysabi.Call) sysabi.Result {
	l, ok := k.fds[c.FD].(*listener)
	if !ok {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	for len(l.pending) == 0 {
		if l.closed {
			return sysabi.Result{Err: sysabi.EBADF}
		}
		t.Block(&l.waiters)
	}
	ep := l.pending[0]
	l.pending = l.pending[1:]
	return sysabi.Result{Ret: int64(k.allocFD(ep))}
}

func (k *Kernel) connect(c sysabi.Call) sysabi.Result {
	l, ok := k.ports[c.Args[0]]
	if !ok || l.closed {
		return sysabi.Result{Err: sysabi.ENOENT}
	}
	server := &endpoint{}
	client := &endpoint{}
	server.peer = client
	client.peer = server
	l.pending = append(l.pending, server)
	l.waiters.WakeOne(k.sched)
	k.activity.Broadcast(k.sched)
	return sysabi.Result{Ret: int64(k.allocFD(client))}
}

func (k *Kernel) read(t *sim.Task, c sysabi.Call) sysabi.Result {
	ep, ok := k.fds[c.FD].(*endpoint)
	if !ok {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	max := int(c.Args[0])
	if max <= 0 {
		return sysabi.Result{Err: sysabi.EINVAL}
	}
	for ep.inbox.Len() == 0 {
		if ep.closed {
			return sysabi.Result{Err: sysabi.ECONNRESET}
		}
		if ep.peer.closed {
			return sysabi.Result{Ret: 0} // EOF
		}
		t.Block(&ep.readers)
	}
	n := ep.inbox.Len()
	if n > max {
		n = max
	}
	data := make([]byte, n)
	_, _ = ep.inbox.Read(data)
	res := sysabi.Result{Ret: int64(n), Data: data, ReqID: ep.reqID}
	ep.reqID = 0
	return res
}

func (k *Kernel) write(c sysabi.Call) sysabi.Result {
	ep, ok := k.fds[c.FD].(*endpoint)
	if !ok {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	if ep.closed {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	if ep.peer.closed {
		return sysabi.Result{Err: sysabi.EPIPE}
	}
	ep.peer.inbox.Write(c.Buf)
	if c.ReqID != 0 {
		ep.peer.reqID = c.ReqID
	}
	ep.peer.readers.WakeAll(k.sched)
	k.activity.Broadcast(k.sched)
	return sysabi.Result{Ret: int64(len(c.Buf))}
}

func (k *Kernel) closeFD(c sysabi.Call) sysabi.Result {
	o, ok := k.fds[c.FD]
	if !ok {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	delete(k.fds, c.FD)
	switch v := o.(type) {
	case *endpoint:
		v.closed = true
		v.readers.WakeAll(k.sched)
		v.peer.readers.WakeAll(k.sched)
		k.activity.Broadcast(k.sched)
	case *listener:
		v.closed = true
		delete(k.ports, v.port)
		v.waiters.WakeAll(k.sched)
		k.activity.Broadcast(k.sched)
	case *epoll, *openFile:
		// nothing extra
	}
	return sysabi.Result{}
}

func (k *Kernel) open(c sysabi.Call) sysabi.Result {
	f, ok := k.fs[c.Path]
	switch {
	case !ok && c.Args[0] == sysabi.OpenRead:
		return sysabi.Result{Err: sysabi.ENOENT}
	case !ok:
		f = &file{name: c.Path}
		k.fs[c.Path] = f
	case c.Args[0] == sysabi.OpenWrite:
		f.data = nil // truncate
	}
	of := &openFile{f: f, flags: c.Args[0]}
	if c.Args[0] == sysabi.OpenAppend {
		of.offset = len(f.data)
	}
	return sysabi.Result{Ret: int64(k.allocFD(of))}
}

func (k *Kernel) fread(c sysabi.Call) sysabi.Result {
	of, ok := k.fds[c.FD].(*openFile)
	if !ok {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	max := int(c.Args[0])
	if max <= 0 {
		return sysabi.Result{Err: sysabi.EINVAL}
	}
	rem := len(of.f.data) - of.offset
	if rem <= 0 {
		return sysabi.Result{Ret: 0} // EOF
	}
	n := rem
	if n > max {
		n = max
	}
	data := make([]byte, n)
	copy(data, of.f.data[of.offset:of.offset+n])
	of.offset += n
	return sysabi.Result{Ret: int64(n), Data: data}
}

func (k *Kernel) fwrite(c sysabi.Call) sysabi.Result {
	of, ok := k.fds[c.FD].(*openFile)
	if !ok {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	if of.flags == sysabi.OpenRead {
		return sysabi.Result{Err: sysabi.EINVAL}
	}
	// Write at cursor, extending as needed.
	end := of.offset + len(c.Buf)
	if end > len(of.f.data) {
		grown := make([]byte, end)
		copy(grown, of.f.data)
		of.f.data = grown
	}
	copy(of.f.data[of.offset:], c.Buf)
	of.offset = end
	return sysabi.Result{Ret: int64(len(c.Buf))}
}

func (k *Kernel) stat(c sysabi.Call) sysabi.Result {
	f, ok := k.fs[c.Path]
	if !ok {
		return sysabi.Result{Err: sysabi.ENOENT}
	}
	return sysabi.Result{Ret: int64(len(f.data))}
}

func (k *Kernel) unlink(c sysabi.Call) sysabi.Result {
	if _, ok := k.fs[c.Path]; !ok {
		return sysabi.Result{Err: sysabi.ENOENT}
	}
	delete(k.fs, c.Path)
	return sysabi.Result{}
}

func (k *Kernel) listDir(c sysabi.Call) sysabi.Result {
	prefix := c.Path
	if prefix != "" && prefix[len(prefix)-1] != '/' {
		prefix += "/"
	}
	var names []string
	for name := range k.fs { // maporder: ok — names are sorted below
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	var out bytes.Buffer
	for _, n := range names {
		out.WriteString(n)
		out.WriteByte('\n')
	}
	return sysabi.Result{Ret: int64(len(names)), Data: out.Bytes()}
}

func (k *Kernel) epollCtl(c sysabi.Call) sysabi.Result {
	ep, ok := k.fds[c.FD].(*epoll)
	if !ok {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	target := int(c.Args[0])
	if c.Args[1] == 1 {
		if _, exists := k.fds[target]; !exists {
			return sysabi.Result{Err: sysabi.EBADF}
		}
		ep.watched[target] = true
	} else {
		delete(ep.watched, target)
	}
	return sysabi.Result{}
}

// ready reports whether fd has a pending readable event.
func (k *Kernel) ready(fd int) bool {
	switch v := k.fds[fd].(type) {
	case *endpoint:
		return v.inbox.Len() > 0 || v.peer.closed || v.closed
	case *listener:
		return len(v.pending) > 0
	case *openFile:
		return true
	default:
		return false
	}
}

func (k *Kernel) epollWait(t *sim.Task, c sysabi.Call) sysabi.Result {
	ep, ok := k.fds[c.FD].(*epoll)
	if !ok {
		return sysabi.Result{Err: sysabi.EBADF}
	}
	max := int(c.Args[0])
	if max <= 0 {
		max = 64
	}
	// Args[1] is an optional timeout in virtual nanoseconds; 0 blocks
	// indefinitely, like epoll_wait(2) with timeout -1.
	timeout := time.Duration(c.Args[1])
	deadline := k.sched.Now() + timeout
	for {
		var fds []int
		for fd := range ep.watched { // maporder: ok — fds are sorted below; stale-fd deletes are order-independent
			if _, exists := k.fds[fd]; !exists {
				delete(ep.watched, fd)
				continue
			}
			if k.ready(fd) {
				fds = append(fds, fd)
			}
		}
		if len(fds) > 0 {
			sort.Ints(fds)
			if len(fds) > max {
				fds = fds[:max]
			}
			return sysabi.Result{Ret: int64(len(fds)), Ready: fds}
		}
		if timeout > 0 {
			remaining := deadline - k.sched.Now()
			if remaining <= 0 {
				return sysabi.Result{Ret: 0} // timed out, nothing ready
			}
			t.BlockTimeout(k.activity.Queue(), remaining)
		} else {
			t.Block(k.activity.Queue())
		}
	}
}

func (k *Kernel) getPID(t *sim.Task) sysabi.Result {
	if pid, ok := k.pids[t.ID()]; ok {
		return sysabi.Result{Ret: pid}
	}
	k.nextPID++
	k.pids[t.ID()] = k.nextPID
	return sysabi.Result{Ret: k.nextPID}
}

// FileContents returns the contents of a virtual file, for tests.
func (k *Kernel) FileContents(path string) ([]byte, bool) {
	f, ok := k.fs[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// WriteFile creates or replaces a virtual file, for test setup.
func (k *Kernel) WriteFile(path string, data []byte) {
	k.fs[path] = &file{name: path, data: append([]byte(nil), data...)}
}

// OpenFDs returns the number of live file descriptors, for leak tests.
func (k *Kernel) OpenFDs() int { return len(k.fds) }
