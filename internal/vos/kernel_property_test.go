package vos

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

// Property: a stream delivers exactly the bytes written, in order,
// regardless of how writes and reads are sized and interleaved.
func TestStreamIntegrityProperty(t *testing.T) {
	f := func(chunks [][]byte, readSizes []uint8) bool {
		if len(chunks) > 20 {
			chunks = chunks[:20]
		}
		var want bytes.Buffer
		for _, c := range chunks {
			want.Write(c)
		}
		s := sim.New()
		k := NewKernel(s)
		var got bytes.Buffer
		ok := true
		s.Go("server", func(tk *sim.Task) {
			lfd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
			fd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpAccept, FD: lfd}).Ret)
			i := 0
			for {
				size := int64(64)
				if len(readSizes) > 0 {
					size = int64(readSizes[i%len(readSizes)]%63) + 1
				}
				i++
				r := k.Invoke(tk, sysabi.Call{Op: sysabi.OpRead, FD: fd, Args: [2]int64{size, 0}})
				if !r.OK() || r.Ret == 0 {
					return
				}
				got.Write(r.Data)
			}
		})
		s.Go("client", func(tk *sim.Task) {
			fd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{1, 0}}).Ret)
			for _, c := range chunks {
				if len(c) == 0 {
					continue
				}
				r := k.Invoke(tk, sysabi.Call{Op: sysabi.OpWrite, FD: fd, Buf: c})
				if !r.OK() || int(r.Ret) != len(c) {
					ok = false
				}
				if len(c)%3 == 0 {
					tk.Yield() // vary interleaving
				}
			}
			k.Invoke(tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok && bytes.Equal(got.Bytes(), want.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent connections are isolated — each client reads back
// exactly what the echo server was sent on its own connection.
func TestConnectionIsolationProperty(t *testing.T) {
	f := func(nRaw uint8, seed uint8) bool {
		n := int(nRaw%5) + 2
		s := sim.New()
		k := NewKernel(s)
		s.Go("server", func(tk *sim.Task) {
			lfd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
			efd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpEpollCreate}).Ret)
			k.Invoke(tk, sysabi.Call{Op: sysabi.OpEpollCtl, FD: efd, Args: [2]int64{int64(lfd), 1}})
			served := 0
			for served < n {
				r := k.Invoke(tk, sysabi.Call{Op: sysabi.OpEpollWait, FD: efd, Args: [2]int64{16, 0}})
				for _, fd := range r.Ready {
					if fd == lfd {
						nr := k.Invoke(tk, sysabi.Call{Op: sysabi.OpAccept, FD: lfd})
						k.Invoke(tk, sysabi.Call{Op: sysabi.OpEpollCtl, FD: efd, Args: [2]int64{nr.Ret, 1}})
						continue
					}
					rr := k.Invoke(tk, sysabi.Call{Op: sysabi.OpRead, FD: fd, Args: [2]int64{128, 0}})
					if !rr.OK() || rr.Ret == 0 {
						k.Invoke(tk, sysabi.Call{Op: sysabi.OpEpollCtl, FD: efd, Args: [2]int64{int64(fd), 0}})
						k.Invoke(tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
						served++
						continue
					}
					k.Invoke(tk, sysabi.Call{Op: sysabi.OpWrite, FD: fd, Buf: rr.Data})
				}
			}
		})
		ok := true
		for i := 0; i < n; i++ {
			i := i
			s.Go(fmt.Sprintf("client%d", i), func(tk *sim.Task) {
				fd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{1, 0}}).Ret)
				msg := fmt.Sprintf("msg-%d-%d", i, seed)
				k.Invoke(tk, sysabi.Call{Op: sysabi.OpWrite, FD: fd, Buf: []byte(msg)})
				r := k.Invoke(tk, sysabi.Call{Op: sysabi.OpRead, FD: fd, Args: [2]int64{128, 0}})
				if string(r.Data) != msg {
					ok = false
				}
				k.Invoke(tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the filesystem round-trips arbitrary content through
// fwrite/fread at arbitrary chunk sizes.
func TestFileRoundTripProperty(t *testing.T) {
	f := func(content []byte, chunkRaw uint8) bool {
		chunk := int64(chunkRaw%100) + 1
		s := sim.New()
		k := NewKernel(s)
		ok := true
		s.Go("t", func(tk *sim.Task) {
			fd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/f", Args: [2]int64{sysabi.OpenWrite, 0}}).Ret)
			k.Invoke(tk, sysabi.Call{Op: sysabi.OpFWrite, FD: fd, Buf: content})
			k.Invoke(tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
			st := k.Invoke(tk, sysabi.Call{Op: sysabi.OpStat, Path: "/f"})
			if int(st.Ret) != len(content) {
				ok = false
				return
			}
			fd = int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/f", Args: [2]int64{sysabi.OpenRead, 0}}).Ret)
			var got bytes.Buffer
			for {
				r := k.Invoke(tk, sysabi.Call{Op: sysabi.OpFRead, FD: fd, Args: [2]int64{chunk, 0}})
				if r.Ret == 0 {
					break
				}
				got.Write(r.Data)
			}
			ok = bytes.Equal(got.Bytes(), content)
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// EpollWait with a bounded timeout returns empty on quiet descriptors at
// exactly the requested deadline.
func TestEpollWaitTimeout(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	s.Go("t", func(tk *sim.Task) {
		lfd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
		efd := int(k.Invoke(tk, sysabi.Call{Op: sysabi.OpEpollCreate}).Ret)
		k.Invoke(tk, sysabi.Call{Op: sysabi.OpEpollCtl, FD: efd, Args: [2]int64{int64(lfd), 1}})
		start := tk.Now()
		r := k.Invoke(tk, sysabi.Call{Op: sysabi.OpEpollWait, FD: efd, Args: [2]int64{8, int64(25 * time.Millisecond)}})
		if !r.OK() || r.Ret != 0 {
			t.Errorf("timed-out wait = %+v", r)
		}
		if got := tk.Now() - start; got != 25*time.Millisecond {
			t.Errorf("waited %v, want 25ms", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
