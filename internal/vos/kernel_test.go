package vos

import (
	"bytes"
	"testing"
	"time"

	"mvedsua/internal/sim"
	"mvedsua/internal/sysabi"
)

// run executes fn as a task and fails the test on scheduler error.
func run(t *testing.T, fn func(k *Kernel, tk *sim.Task)) {
	t.Helper()
	s := sim.New()
	k := NewKernel(s)
	s.Go("test", func(tk *sim.Task) { fn(k, tk) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func call(k *Kernel, tk *sim.Task, c sysabi.Call) sysabi.Result {
	return k.Invoke(tk, c)
}

func TestSocketListenConnectAccept(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	var serverFD, clientFD int
	s.Go("server", func(tk *sim.Task) {
		r := call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{6379, 0}})
		if !r.OK() {
			t.Errorf("socket: %v", r.Err)
			return
		}
		lfd := int(r.Ret)
		r = call(k, tk, sysabi.Call{Op: sysabi.OpAccept, FD: lfd})
		if !r.OK() {
			t.Errorf("accept: %v", r.Err)
			return
		}
		serverFD = int(r.Ret)
		// Echo one message.
		r = call(k, tk, sysabi.Call{Op: sysabi.OpRead, FD: serverFD, Args: [2]int64{128, 0}})
		if !r.OK() {
			t.Errorf("read: %v", r.Err)
			return
		}
		call(k, tk, sysabi.Call{Op: sysabi.OpWrite, FD: serverFD, Buf: r.Data})
	})
	var got []byte
	s.Go("client", func(tk *sim.Task) {
		r := call(k, tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{6379, 0}})
		if !r.OK() {
			t.Errorf("connect: %v", r.Err)
			return
		}
		clientFD = int(r.Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpWrite, FD: clientFD, Buf: []byte("ping")})
		r = call(k, tk, sysabi.Call{Op: sysabi.OpRead, FD: clientFD, Args: [2]int64{128, 0}})
		got = r.Data
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(got) != "ping" {
		t.Fatalf("echo = %q, want ping", got)
	}
	if serverFD == clientFD {
		t.Fatal("server and client share an fd")
	}
}

func TestConnectNoListener(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		r := call(k, tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{9999, 0}})
		if r.Err != sysabi.ENOENT {
			t.Errorf("connect to dead port = %v, want ENOENT", r.Err)
		}
	})
}

func TestDuplicatePortRejected(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		r := call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{80, 0}})
		if !r.OK() {
			t.Fatalf("socket: %v", r.Err)
		}
		r = call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{80, 0}})
		if r.Err != sysabi.EINVAL {
			t.Errorf("duplicate bind = %v, want EINVAL", r.Err)
		}
	})
}

func TestReadEOFOnPeerClose(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	var eof bool
	s.Go("server", func(tk *sim.Task) {
		lfd := int(call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpAccept, FD: lfd}).Ret)
		r := call(k, tk, sysabi.Call{Op: sysabi.OpRead, FD: fd, Args: [2]int64{16, 0}})
		eof = r.OK() && r.Ret == 0
	})
	s.Go("client", func(tk *sim.Task) {
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{1, 0}}).Ret)
		tk.Yield()
		call(k, tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !eof {
		t.Fatal("read did not return EOF after peer close")
	}
}

func TestWriteToClosedPeerEPIPE(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	var errno sysabi.Errno
	s.Go("server", func(tk *sim.Task) {
		lfd := int(call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpAccept, FD: lfd}).Ret)
		tk.Yield() // let client close
		tk.Yield()
		errno = call(k, tk, sysabi.Call{Op: sysabi.OpWrite, FD: fd, Buf: []byte("x")}).Err
	})
	s.Go("client", func(tk *sim.Task) {
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{1, 0}}).Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if errno != sysabi.EPIPE {
		t.Fatalf("write to closed peer = %v, want EPIPE", errno)
	}
}

func TestPartialRead(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	var first, second []byte
	s.Go("server", func(tk *sim.Task) {
		lfd := int(call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpAccept, FD: lfd}).Ret)
		r := call(k, tk, sysabi.Call{Op: sysabi.OpRead, FD: fd, Args: [2]int64{3, 0}})
		first = r.Data
		r = call(k, tk, sysabi.Call{Op: sysabi.OpRead, FD: fd, Args: [2]int64{100, 0}})
		second = r.Data
	})
	s.Go("client", func(tk *sim.Task) {
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{1, 0}}).Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpWrite, FD: fd, Buf: []byte("abcdef")})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(first) != "abc" || string(second) != "def" {
		t.Fatalf("reads = %q, %q", first, second)
	}
}

func TestBadFDErrors(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		for _, c := range []sysabi.Call{
			{Op: sysabi.OpRead, FD: 99, Args: [2]int64{10, 0}},
			{Op: sysabi.OpWrite, FD: 99, Buf: []byte("x")},
			{Op: sysabi.OpAccept, FD: 99},
			{Op: sysabi.OpClose, FD: 99},
			{Op: sysabi.OpFRead, FD: 99, Args: [2]int64{10, 0}},
			{Op: sysabi.OpFWrite, FD: 99, Buf: []byte("x")},
			{Op: sysabi.OpEpollCtl, FD: 99, Args: [2]int64{1, 1}},
			{Op: sysabi.OpEpollWait, FD: 99, Args: [2]int64{8, 0}},
		} {
			if r := call(k, tk, c); r.Err != sysabi.EBADF {
				t.Errorf("%v = %v, want EBADF", c, r.Err)
			}
		}
	})
}

func TestFileRoundTrip(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		r := call(k, tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/data/x", Args: [2]int64{sysabi.OpenWrite, 0}})
		if !r.OK() {
			t.Fatalf("open: %v", r.Err)
		}
		fd := int(r.Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpFWrite, FD: fd, Buf: []byte("hello ")})
		call(k, tk, sysabi.Call{Op: sysabi.OpFWrite, FD: fd, Buf: []byte("world")})
		call(k, tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})

		r = call(k, tk, sysabi.Call{Op: sysabi.OpStat, Path: "/data/x"})
		if r.Ret != 11 {
			t.Fatalf("stat size = %d, want 11", r.Ret)
		}

		r = call(k, tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/data/x", Args: [2]int64{sysabi.OpenRead, 0}})
		fd = int(r.Ret)
		var got bytes.Buffer
		for {
			r = call(k, tk, sysabi.Call{Op: sysabi.OpFRead, FD: fd, Args: [2]int64{4, 0}})
			if r.Ret == 0 {
				break
			}
			got.Write(r.Data)
		}
		if got.String() != "hello world" {
			t.Fatalf("read back %q", got.String())
		}
	})
}

func TestOpenReadMissingFile(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		r := call(k, tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/nope", Args: [2]int64{sysabi.OpenRead, 0}})
		if r.Err != sysabi.ENOENT {
			t.Errorf("open missing = %v, want ENOENT", r.Err)
		}
	})
}

func TestOpenWriteTruncates(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		k.WriteFile("/f", []byte("old content"))
		r := call(k, tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/f", Args: [2]int64{sysabi.OpenWrite, 0}})
		fd := int(r.Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpFWrite, FD: fd, Buf: []byte("new")})
		data, _ := k.FileContents("/f")
		if string(data) != "new" {
			t.Errorf("contents = %q, want new", data)
		}
	})
}

func TestOpenAppend(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		k.WriteFile("/f", []byte("abc"))
		r := call(k, tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/f", Args: [2]int64{sysabi.OpenAppend, 0}})
		fd := int(r.Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpFWrite, FD: fd, Buf: []byte("def")})
		data, _ := k.FileContents("/f")
		if string(data) != "abcdef" {
			t.Errorf("contents = %q, want abcdef", data)
		}
	})
}

func TestFWriteToReadOnlyFD(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		k.WriteFile("/f", []byte("x"))
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/f", Args: [2]int64{sysabi.OpenRead, 0}}).Ret)
		r := call(k, tk, sysabi.Call{Op: sysabi.OpFWrite, FD: fd, Buf: []byte("y")})
		if r.Err != sysabi.EINVAL {
			t.Errorf("fwrite read-only = %v, want EINVAL", r.Err)
		}
	})
}

func TestUnlinkAndStat(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		k.WriteFile("/f", []byte("x"))
		if r := call(k, tk, sysabi.Call{Op: sysabi.OpUnlink, Path: "/f"}); !r.OK() {
			t.Fatalf("unlink: %v", r.Err)
		}
		if r := call(k, tk, sysabi.Call{Op: sysabi.OpStat, Path: "/f"}); r.Err != sysabi.ENOENT {
			t.Errorf("stat after unlink = %v, want ENOENT", r.Err)
		}
		if r := call(k, tk, sysabi.Call{Op: sysabi.OpUnlink, Path: "/f"}); r.Err != sysabi.ENOENT {
			t.Errorf("double unlink = %v, want ENOENT", r.Err)
		}
	})
}

func TestListDirSortedAndScoped(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		k.WriteFile("/pub/b.txt", nil)
		k.WriteFile("/pub/a.txt", nil)
		k.WriteFile("/priv/c.txt", nil)
		r := call(k, tk, sysabi.Call{Op: sysabi.OpListDir, Path: "/pub"})
		if r.Ret != 2 {
			t.Fatalf("count = %d, want 2", r.Ret)
		}
		if string(r.Data) != "a.txt\nb.txt\n" {
			t.Fatalf("listing = %q", r.Data)
		}
	})
}

func TestEpollWaitReadiness(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	var ready []int
	var connFD int
	s.Go("server", func(tk *sim.Task) {
		lfd := int(call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
		efd := int(call(k, tk, sysabi.Call{Op: sysabi.OpEpollCreate}).Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpEpollCtl, FD: efd, Args: [2]int64{int64(lfd), 1}})
		// Wait: listener becomes ready when the client connects.
		r := call(k, tk, sysabi.Call{Op: sysabi.OpEpollWait, FD: efd, Args: [2]int64{8, 0}})
		if len(r.Ready) != 1 || r.Ready[0] != lfd {
			t.Errorf("ready = %v, want [%d]", r.Ready, lfd)
		}
		connFD = int(call(k, tk, sysabi.Call{Op: sysabi.OpAccept, FD: lfd}).Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpEpollCtl, FD: efd, Args: [2]int64{int64(connFD), 1}})
		r = call(k, tk, sysabi.Call{Op: sysabi.OpEpollWait, FD: efd, Args: [2]int64{8, 0}})
		ready = r.Ready
	})
	s.Go("client", func(tk *sim.Task) {
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{1, 0}}).Ret)
		tk.Yield()
		call(k, tk, sysabi.Call{Op: sysabi.OpWrite, FD: fd, Buf: []byte("data")})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ready) != 1 || ready[0] != connFD {
		t.Fatalf("ready = %v, want [%d]", ready, connFD)
	}
}

func TestEpollCtlDelete(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	s.Go("t", func(tk *sim.Task) {
		lfd := int(call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
		efd := int(call(k, tk, sysabi.Call{Op: sysabi.OpEpollCreate}).Ret)
		call(k, tk, sysabi.Call{Op: sysabi.OpEpollCtl, FD: efd, Args: [2]int64{int64(lfd), 1}})
		call(k, tk, sysabi.Call{Op: sysabi.OpEpollCtl, FD: efd, Args: [2]int64{int64(lfd), 0}})
		call(k, tk, sysabi.Call{Op: sysabi.OpConnect, Args: [2]int64{1, 0}})
		// lfd is ready but no longer watched: epoll_wait must block, so
		// run it with a killer.
		done := false
		waiter := tk.Scheduler().Go("waiter", func(tk2 *sim.Task) {
			call(k, tk2, sysabi.Call{Op: sysabi.OpEpollWait, FD: efd, Args: [2]int64{8, 0}})
			done = true
		})
		tk.Yield()
		tk.Yield()
		if done {
			t.Error("epoll_wait returned for an unwatched fd")
		}
		waiter.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClockSyscall(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		tk.Advance(42 * time.Millisecond)
		r := call(k, tk, sysabi.Call{Op: sysabi.OpClock})
		if time.Duration(r.Ret) != 42*time.Millisecond {
			t.Errorf("clock = %v", time.Duration(r.Ret))
		}
	})
}

func TestGetPIDStablePerTask(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	pids := map[string]int64{}
	for _, name := range []string{"a", "b"} {
		name := name
		s.Go(name, func(tk *sim.Task) {
			p1 := call(k, tk, sysabi.Call{Op: sysabi.OpGetPID}).Ret
			p2 := call(k, tk, sysabi.Call{Op: sysabi.OpGetPID}).Ret
			if p1 != p2 {
				t.Errorf("pid changed: %d -> %d", p1, p2)
			}
			pids[name] = p1
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pids["a"] == pids["b"] {
		t.Fatal("distinct tasks share a pid")
	}
}

func TestBaseCostCharged(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	k.BaseCost = func(c sysabi.Call) time.Duration { return time.Microsecond }
	s.Go("t", func(tk *sim.Task) {
		for i := 0; i < 10; i++ {
			call(k, tk, sysabi.Call{Op: sysabi.OpClock})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Now() != 10*time.Microsecond {
		t.Fatalf("Now = %v, want 10µs", s.Now())
	}
}

func TestStatsCount(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		call(k, tk, sysabi.Call{Op: sysabi.OpClock})
		call(k, tk, sysabi.Call{Op: sysabi.OpClock})
		call(k, tk, sysabi.Call{Op: sysabi.OpGetPID})
		if k.Stats[sysabi.OpClock] != 2 || k.Stats[sysabi.OpGetPID] != 1 {
			t.Errorf("stats = %v", k.Stats)
		}
	})
}

func TestInvalidOp(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		if r := call(k, tk, sysabi.Call{Op: sysabi.Op(999)}); r.Err != sysabi.EINVAL {
			t.Errorf("invalid op = %v, want EINVAL", r.Err)
		}
	})
}

func TestCloseListenerWakesAcceptor(t *testing.T) {
	s := sim.New()
	k := NewKernel(s)
	var acceptErr sysabi.Errno
	var lfd int
	s.Go("server", func(tk *sim.Task) {
		lfd = int(call(k, tk, sysabi.Call{Op: sysabi.OpSocket, Args: [2]int64{1, 0}}).Ret)
		acceptErr = call(k, tk, sysabi.Call{Op: sysabi.OpAccept, FD: lfd}).Err
	})
	s.Go("closer", func(tk *sim.Task) {
		tk.Yield()
		call(k, tk, sysabi.Call{Op: sysabi.OpClose, FD: lfd})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acceptErr != sysabi.EBADF {
		t.Fatalf("accept after close = %v, want EBADF", acceptErr)
	}
}

func TestFDLeakAccounting(t *testing.T) {
	run(t, func(k *Kernel, tk *sim.Task) {
		before := k.OpenFDs()
		fd := int(call(k, tk, sysabi.Call{Op: sysabi.OpOpen, Path: "/f", Args: [2]int64{sysabi.OpenWrite, 0}}).Ret)
		if k.OpenFDs() != before+1 {
			t.Fatal("open did not add an fd")
		}
		call(k, tk, sysabi.Call{Op: sysabi.OpClose, FD: fd})
		if k.OpenFDs() != before {
			t.Fatal("close did not remove the fd")
		}
	})
}
